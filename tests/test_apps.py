"""Tests for the application workload models."""

import pytest

from repro import params
from repro.apps.fio import FioBenchmark, IopingBenchmark
from repro.apps.kernbench import KernbenchRun
from repro.apps.kvstore import CASSANDRA, MEMCACHED, KvStoreServer
from repro.apps.mpi import COLLECTIVES, MpiCluster
from repro.apps.perftest import RdmaPerfTest
from repro.apps.sysbench import MemoryBenchmark, ThreadBenchmark
from repro.apps.ycsb import READ_HEAVY, WRITE_HEAVY, YcsbBenchmark
from repro.cloud.provisioner import Provisioner
from repro.cloud.scenario import build_testbed
from repro.guest.osimage import OsImage

MB = 2**20


def deploy(method, node_count=1, with_infiniband=False, image=None):
    testbed = build_testbed(node_count=node_count,
                            with_infiniband=with_infiniband, image=image)
    provisioner = Provisioner(testbed)
    env = testbed.env
    instances = []

    def scenario():
        for index in range(node_count):
            instance = yield from provisioner.deploy(
                method, node_index=index, skip_firmware=True)
            instances.append(instance)

    env.run(until=env.process(scenario()))
    return testbed, instances


def run(env, generator):
    return env.run(until=env.process(generator))


# -- kvstore + ycsb -------------------------------------------------------------

def test_memcached_baremetal_matches_calibration():
    testbed, [instance] = deploy("baremetal")
    store = KvStoreServer(instance, MEMCACHED)
    bench = YcsbBenchmark(store, READ_HEAVY)

    def proc():
        yield from bench.run(60.0)

    run(testbed.env, proc())
    assert bench.mean_throughput() == pytest.approx(MEMCACHED.base_tps,
                                                    rel=0.02)
    assert bench.mean_latency() == pytest.approx(MEMCACHED.base_latency,
                                                 rel=0.02)


def test_cassandra_does_real_disk_flushes():
    testbed, [instance] = deploy("baremetal")
    store = KvStoreServer(instance, CASSANDRA)
    bench = YcsbBenchmark(store, WRITE_HEAVY)

    def proc():
        yield from bench.run(30.0)

    run(testbed.env, proc())
    assert store.flush_ops > 0
    assert store.flush_seconds_total > 0
    # The flushes really landed on the disk.
    assert testbed.node.disk.contents.get(store.data_lba) is not None


def test_ycsb_records_time_series():
    testbed, [instance] = deploy("baremetal")
    store = KvStoreServer(instance, MEMCACHED)
    bench = YcsbBenchmark(store, READ_HEAVY, window=5.0)

    def proc():
        yield from bench.run(30.0)

    run(testbed.env, proc())
    assert len(bench.throughput) == 6
    assert len(bench.latency) == 6


def test_ycsb_write_fraction_validated():
    testbed, [instance] = deploy("baremetal")
    store = KvStoreServer(instance, MEMCACHED)
    with pytest.raises(ValueError):
        YcsbBenchmark(store, 1.5)


def test_kvstore_slower_on_kvm_than_baremetal():
    def tp(method):
        testbed, [instance] = deploy(method)
        store = KvStoreServer(instance, MEMCACHED)
        bench = YcsbBenchmark(store, READ_HEAVY)

        def proc():
            yield from bench.run(30.0)

        run(testbed.env, proc())
        return bench.mean_throughput()

    assert tp("kvm-local") < tp("baremetal")


# -- sysbench ------------------------------------------------------------------------

def test_threads_lhp_explodes_on_kvm():
    testbed, [bare] = deploy("baremetal")
    testbed2, [kvm] = deploy("kvm-local")

    def measure(instance, threads):
        bench = ThreadBenchmark(instance)

        def proc():
            return (yield from bench.run(threads))

        return run(instance.env, proc())

    bare_24 = measure(bare, 24)
    kvm_24 = measure(kvm, 24)
    kvm_2 = measure(kvm, 2)
    bare_2 = measure(bare, 2)
    # Paper Fig. 8: +68% at 24 threads, negligible at low counts.
    assert kvm_24 / bare_24 == pytest.approx(1.68, abs=0.08)
    assert kvm_2 / bare_2 < 1.1


def test_threads_validation():
    testbed, [instance] = deploy("baremetal")
    bench = ThreadBenchmark(instance)
    with pytest.raises(ValueError):
        run(testbed.env, bench.run(0))


def test_memory_bench_kvm_overhead_peaks_at_16kb():
    testbed, [bare] = deploy("baremetal")
    testbed2, [kvm] = deploy("kvm-local")

    def measure(instance, block_kb):
        bench = MemoryBenchmark(instance)

        def proc():
            return (yield from bench.run(block_kb))

        return run(instance.env, proc())

    ratio_16 = measure(bare, 16) / measure(kvm, 16)
    ratio_1 = measure(bare, 1) / measure(kvm, 1)
    # Paper Fig. 9: 35% at 16 KB, smaller at 1 KB.
    assert ratio_16 == pytest.approx(1.35, abs=0.05)
    assert ratio_1 < ratio_16


# -- kernbench -------------------------------------------------------------------------

def test_kernbench_baremetal_near_16s():
    testbed, [instance] = deploy("baremetal")
    kb = KernbenchRun(instance)

    def proc():
        return (yield from kb.run())

    elapsed = run(testbed.env, proc())
    assert elapsed == pytest.approx(16.0, rel=0.1)


def test_kernbench_overhead_ordering():
    """Figure 7: deploy > KVM > devirt == baremetal."""
    def measure(method):
        testbed, [instance] = deploy(method)
        kb = KernbenchRun(instance)

        def proc():
            return (yield from kb.run())

        return run(testbed.env, proc())

    bare = measure("baremetal")
    kvm = measure("kvm-local")
    bmcast_deploy = measure("bmcast")
    assert bmcast_deploy > kvm > bare
    assert bmcast_deploy / bare < 1.15


# -- fio / ioping -----------------------------------------------------------------------

def test_fio_baremetal_throughput_near_disk_rate():
    testbed, [instance] = deploy("baremetal")
    fio = FioBenchmark(instance)

    def proc():
        yield from fio.layout()
        read_bw = yield from fio.read_throughput()
        write_bw = yield from fio.write_throughput()
        return read_bw, write_bw

    read_bw, write_bw = run(testbed.env, proc())
    assert read_bw == pytest.approx(params.DISK_READ_BW, rel=0.05)
    assert write_bw == pytest.approx(params.DISK_WRITE_BW, rel=0.05)


def test_ioping_latency_small_on_baremetal():
    testbed, [instance] = deploy("baremetal")
    ioping = IopingBenchmark(instance)

    def proc():
        yield from ioping.layout()
        return (yield from ioping.run())

    latency = run(testbed.env, proc())
    # Rotational disk, random 4-KB reads: a few milliseconds.
    assert 1e-3 < latency < 8e-3
    assert len(ioping.latencies) == IopingBenchmark.REQUESTS


def test_ioping_deploy_adds_milliseconds():
    """Figure 11: the deploy phase adds ~4 ms to small-read latency."""
    def measure(method):
        testbed, [instance] = deploy(method)
        ioping = IopingBenchmark(instance)

        def proc():
            yield from ioping.layout()
            return (yield from ioping.run())

        return run(testbed.env, proc())

    bare = measure("baremetal")
    deploying = measure("bmcast")
    assert deploying > bare
    assert 1e-3 < deploying - bare < 12e-3


# -- MPI / perftest ------------------------------------------------------------------------

def small_image():
    return OsImage(size_bytes=32 * MB, boot_read_bytes=2 * MB,
                   boot_think_seconds=0.5)


def test_mpi_needs_two_nodes_with_ib():
    testbed, instances = deploy("baremetal", node_count=1,
                                with_infiniband=True, image=small_image())
    with pytest.raises(ValueError):
        MpiCluster(instances)


def test_mpi_collectives_run_and_scale():
    testbed, instances = deploy("baremetal", node_count=4,
                                with_infiniband=True, image=small_image())
    cluster = MpiCluster(instances)
    results = {}

    def proc():
        for collective in COLLECTIVES:
            results[collective] = yield from cluster.measure(
                collective, message_bytes=1024, iterations=5)

    run(testbed.env, proc())
    for collective, latency in results.items():
        assert latency > 0
    # Allgather (N-1 rounds) costs more than barrier (log N tiny hops).
    assert results["allgather"] > results["barrier"]


def test_mpi_kvm_latency_tax():
    def measure(method):
        testbed, instances = deploy(method, node_count=4,
                                    with_infiniband=True,
                                    image=small_image())
        cluster = MpiCluster(instances)

        def proc():
            return (yield from cluster.measure("allgather", 8,
                                               iterations=5))

        return run(testbed.env, proc())

    bare = measure("baremetal")
    kvm = measure("kvm-local")
    assert kvm / bare > 1.5  # paper Fig. 6: up to 2.35x


def test_rdma_bandwidth_saturates_for_all_platforms():
    """Figure 12: no throughput difference (pipelined hardware)."""
    rates = {}
    for method in ("baremetal", "kvm-local"):
        testbed, instances = deploy(method, node_count=2,
                                    with_infiniband=True,
                                    image=small_image())
        test = RdmaPerfTest(instances[0], instances[1])

        def proc():
            return (yield from test.bandwidth())

        rates[method] = run(testbed.env, proc())
    assert rates["kvm-local"] == pytest.approx(rates["baremetal"],
                                               rel=0.02)


def test_rdma_latency_taxed_on_kvm():
    """Figure 13: KVM latency +23.6%, bare metal reference."""
    latencies = {}
    for method in ("baremetal", "kvm-local"):
        testbed, instances = deploy(method, node_count=2,
                                    with_infiniband=True,
                                    image=small_image())
        test = RdmaPerfTest(instances[0], instances[1])

        def proc():
            return (yield from test.latency(message_bytes=8))

        latencies[method] = run(testbed.env, proc())
    ratio = latencies["kvm-local"] / latencies["baremetal"]
    assert ratio == pytest.approx(1.236, abs=0.03)  # paper: +23.6%
