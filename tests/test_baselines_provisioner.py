"""Tests for deployment baselines and the provisioner API."""

import pytest

from repro import params
from repro.baselines.os_streaming import OsNotSupportedError
from repro.cloud.provisioner import Provisioner
from repro.cloud.scenario import build_testbed
from repro.guest.osimage import OsImage

MB = 2**20


def small_image(size_mb=32, name="ubuntu-14.04"):
    return OsImage(name=name, size_bytes=size_mb * MB,
                   boot_read_bytes=2 * MB, boot_think_seconds=1.0)


def make(image=None, **kwargs):
    testbed = build_testbed(image=image or small_image(), **kwargs)
    return testbed, Provisioner(testbed)


def deploy(testbed, provisioner, method, **kwargs):
    env = testbed.env
    process = env.process(provisioner.deploy(method, **kwargs))
    return env.run(until=process)


def test_unknown_method_rejected():
    testbed, provisioner = make()

    def proc():
        yield from provisioner.deploy("carrier-pigeon")

    with pytest.raises(ValueError):
        testbed.env.run(until=testbed.env.process(proc()))


def test_baremetal_reference_timing():
    testbed, provisioner = make()
    instance = deploy(testbed, provisioner, "baremetal")
    assert instance.method == "baremetal"
    assert instance.guest.booted
    # Firmware + OS boot only.
    labels = [label for label, _ in instance.timeline.segments]
    assert labels == ["firmware init", "OS boot"]
    firmware = dict(instance.timeline.segments)["firmware init"]
    assert firmware == pytest.approx(params.FIRMWARE_INIT_SECONDS)


def test_bmcast_deploy_via_provisioner():
    testbed, provisioner = make()
    instance = deploy(testbed, provisioner, "bmcast")
    assert instance.platform.phase in ("deployment", "baremetal")
    labels = [label for label, _ in instance.timeline.segments]
    assert "VMM boot" in labels
    vmm_boot = dict(instance.timeline.segments)["VMM boot"]
    assert vmm_boot == pytest.approx(params.BMCAST_VMM_BOOT_SECONDS + 2.0,
                                     abs=1.0)


def test_image_copy_slowest_and_pays_firmware_twice():
    testbed, provisioner = make()
    instance = deploy(testbed, provisioner, "image-copy")
    machine = testbed.node.machine
    assert machine.firmware.init_count == 2
    segments = dict(instance.timeline.segments)
    assert "image transfer" in segments
    assert segments["restart (firmware again)"] \
        >= params.FIRMWARE_INIT_SECONDS
    # The disk now holds the image.
    assert testbed.image.verify_deployed(testbed.node.disk.contents)


def test_image_copy_transfer_rate_near_line_rate():
    testbed, provisioner = make(image=small_image(256))
    instance = deploy(testbed, provisioner, "image-copy")
    rate = instance.platform.transfer_rate
    # Gigabit-limited (paper: ~100 MB/s).
    assert 80e6 < rate < 125e6


def test_network_boot_fast_but_leaves_disk_empty():
    testbed, provisioner = make()
    instance = deploy(testbed, provisioner, "network-boot")
    assert instance.platform.booted
    assert testbed.node.disk.contents.total_covered() == 0

    def use():
        runs = yield from instance.read(100, 8)
        return runs

    runs = testbed.env.run(until=testbed.env.process(use()))
    assert runs[0][2] == (testbed.image.name, 0)


def test_network_boot_writes_stay_remote_and_read_back():
    testbed, provisioner = make()
    instance = deploy(testbed, provisioner, "network-boot")

    def use():
        yield from instance.write(50, 4, tag="t")
        runs = yield from instance.read(50, 4)
        return runs

    runs = testbed.env.run(until=testbed.env.process(use()))
    assert runs[0][2][0] == "netboot"


@pytest.mark.parametrize("backend", ["kvm-nfs", "kvm-iscsi"])
def test_kvm_network_backends_boot_times(backend):
    testbed, provisioner = make()
    instance = deploy(testbed, provisioner, backend, skip_firmware=True)
    segments = dict(instance.timeline.segments)
    assert segments["KVM boot"] == pytest.approx(params.KVM_BOOT_SECONDS)
    expected = params.KVM_GUEST_BOOT_NFS_SECONDS if backend == "kvm-nfs" \
        else params.KVM_GUEST_BOOT_ISCSI_SECONDS
    # PXE load of the hypervisor adds a couple of seconds.
    assert segments["guest OS boot"] == pytest.approx(expected, abs=3.0)
    condition = instance.condition
    assert condition.lock_holder_preemption
    assert condition.nested_paging


def test_kvm_local_virtio_penalty():
    testbed, provisioner = make()
    instance = deploy(testbed, provisioner, "kvm-local",
                      skip_firmware=True)
    env = testbed.env
    nbytes = 64 * MB
    sectors = nbytes // params.SECTOR_BYTES

    def use():
        start = env.now
        yield from instance.read(0, sectors)
        return nbytes / (env.now - start)

    throughput = env.run(until=env.process(use()))
    expected = params.DISK_READ_BW \
        * (1 - params.KVM_STORAGE_READ_OVERHEAD_LOCAL)
    assert throughput == pytest.approx(expected, rel=0.05)


def test_os_streaming_deploys_in_background():
    testbed, provisioner = make(image=small_image(16))
    instance = deploy(testbed, provisioner, "os-streaming")
    model = instance.platform
    testbed.env.run(until=model.done)
    assert model.bitmap.complete
    assert testbed.image.verify_deployed(testbed.node.disk.contents,
                                         model.written)


def test_os_streaming_rejects_unsupported_os():
    testbed, provisioner = make(image=small_image(16, name="windows-8.1"))

    def proc():
        yield from provisioner.deploy("os-streaming")

    with pytest.raises(OsNotSupportedError):
        testbed.env.run(until=testbed.env.process(proc()))


def test_startup_ordering_matches_figure4():
    """The headline shape on a small image: BMcast far faster than image
    copy, KVM in the same ballpark as BMcast.  (The paper-scale ordering,
    including network boot, is reproduced by the Figure 4 bench.)"""
    times = {}
    for method in ("bmcast", "image-copy", "kvm-nfs"):
        testbed, provisioner = make()
        instance = deploy(testbed, provisioner, method,
                          skip_firmware=True)
        times[method] = instance.timeline.total
    assert times["bmcast"] < times["kvm-nfs"] + 60  # same ballpark
    assert times["image-copy"] > 4 * times["bmcast"]


def test_skip_firmware_flag():
    testbed, provisioner = make()
    instance = deploy(testbed, provisioner, "baremetal",
                      skip_firmware=True)
    segments = dict(instance.timeline.segments)
    assert segments["firmware init"] == 0.0
