"""Calibration regression pins.

These run the paper-scale headline experiments and pin the measured
values to the bands EXPERIMENTS.md reports, so a refactor that silently
shifts the reproduction gets caught here rather than in the benches.
"""

import pytest

from repro.cloud.provisioner import Provisioner
from repro.cloud.scenario import build_testbed


def deploy(method, **kwargs):
    testbed = build_testbed(**kwargs)
    provisioner = Provisioner(testbed)
    env = testbed.env
    instance = env.run(until=env.process(
        provisioner.deploy(method, skip_firmware=True)))
    return testbed, instance


def test_bmcast_startup_near_paper_63s():
    testbed, instance = deploy("bmcast")
    # Paper: 63 s (5 s VMM + 58 s boot); ours includes 2 s PXE.
    assert 55.0 < instance.timeline.total < 72.0
    vmm = instance.platform
    # Paper 5.1: only ~72 MB transferred during boot.
    assert vmm.deployment.redirected_bytes == pytest.approx(72 * 2**20,
                                                            rel=0.1)


def test_guest_boot_near_paper_58s():
    testbed, instance = deploy("bmcast")
    assert 48.0 < instance.guest.boot_seconds < 64.0


def test_idle_deployment_minutes_at_paper_scale():
    testbed, instance = deploy("bmcast")
    env = testbed.env
    vmm = instance.platform
    env.run(until=vmm.copier.done)
    # Idle-guest deployment of 32 GB with default moderation: paper's
    # loaded runs took 16-17 min; idle is faster.  Pin the band.
    minutes = vmm.copier.elapsed / 60.0
    assert 8.0 < minutes < 16.0


def test_zero_exits_after_devirt_at_paper_scale():
    testbed, instance = deploy("bmcast")
    env = testbed.env
    vmm = instance.platform
    env.run(until=vmm.copier.done)
    env.run(until=env.now + 10.0)
    machine = instance.machine
    before = machine.total_vm_exits()

    def post_devirt_io():
        for index in range(10):
            yield from instance.read(index * 1024, 256)

    env.run(until=env.process(post_devirt_io()))
    assert machine.total_vm_exits() == before
    assert vmm.phase == "baremetal"
