"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "PRIMERGY" in out
    assert "116.6" in out


def test_deploy_bmcast(capsys):
    assert main(["deploy", "--method", "bmcast", "--image-gb", "0.25"]) \
        == 0
    out = capsys.readouterr().out
    assert "instance ready after" in out
    assert "VMM boot" in out


def test_deploy_wait_reaches_baremetal(capsys):
    assert main(["deploy", "--method", "bmcast", "--image-gb", "0.125",
                 "--wait"]) == 0
    out = capsys.readouterr().out
    assert "phase=baremetal" in out
    assert "blocks_filled" in out


def test_deploy_with_prefetch(capsys):
    assert main(["deploy", "--method", "bmcast", "--image-gb", "0.25",
                 "--prefetch"]) == 0
    out = capsys.readouterr().out
    assert "instance ready after" in out


def test_deploy_baremetal_cold(capsys):
    assert main(["deploy", "--method", "baremetal", "--image-gb", "0.125",
                 "--cold"]) == 0
    out = capsys.readouterr().out
    assert "firmware init 133s" in out


def test_deploy_other_controllers(capsys):
    for controller in ("ide", "megaraid"):
        assert main(["deploy", "--method", "bmcast",
                     "--image-gb", "0.125",
                     "--controller", controller]) == 0


def test_compare(capsys):
    assert main(["compare", "--image-gb", "0.25"]) == 0
    out = capsys.readouterr().out
    for method in ("bmcast", "image-copy", "network-boot", "kvm-nfs"):
        assert method in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_unknown_method_rejected():
    with pytest.raises(SystemExit):
        main(["deploy", "--method", "smoke-signals"])


def test_lint_command_clean_tree(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_lint_command_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "SIM001" in out and "SIM006" in out


def test_lint_command_flags_bad_file(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nSTART = time.time()\n")
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "SIM001" in out


def test_deploy_sanitized(capsys):
    assert main(["deploy", "--method", "bmcast", "--image-gb", "0.125",
                 "--wait", "--sanitize"]) == 0
    out = capsys.readouterr().out
    assert "sanitizers: clean" in out


def test_deploy_replay_check(capsys):
    assert main(["deploy", "--method", "bmcast", "--image-gb", "0.0625",
                 "--replay-check"]) == 0
    out = capsys.readouterr().out
    assert "runs identical" in out


def test_scaleout_sanitized(capsys):
    assert main(["scaleout", "--nodes", "2", "--wave-size", "2",
                 "--image-gb", "0.0625", "--p2p", "--wait",
                 "--sanitize"]) == 0
    out = capsys.readouterr().out
    assert "sanitizers: clean" in out
