"""Cluster orchestration, OS transparency, and failure resilience."""

import pytest

from repro.baselines.os_streaming import OsNotSupportedError
from repro.cloud.cluster import Cluster
from repro.cloud.provisioner import Provisioner
from repro.cloud.scenario import build_testbed
from repro.guest.osimage import (
    OsImage,
    centos_image,
    ubuntu_image,
    windows_image,
)
from repro.vmm.moderation import FULL_SPEED, ModerationPolicy

MB = 2**20


def small(factory=ubuntu_image, size_mb=32):
    return factory(size_bytes=size_mb * MB, boot_read_bytes=2 * MB,
                   boot_think_seconds=1.0)


# -- Cluster -------------------------------------------------------------------

def test_cluster_deploy_all_simultaneously():
    testbed = build_testbed(node_count=3, image=small())
    cluster = Cluster(testbed)
    env = testbed.env

    def scenario():
        return (yield from cluster.deploy_all("bmcast",
                                              policy=FULL_SPEED))

    instances = env.run(until=env.process(scenario()))
    assert len(instances) == 3
    assert len(cluster) == 3
    # Simultaneous: everyone's boot overlapped (all-ready within a small
    # factor of one node's time).
    assert cluster.total_startup_seconds() < 2 * min(
        instance.timeline.total for instance in instances)


def test_cluster_wait_and_verify():
    testbed = build_testbed(node_count=2, image=small())
    cluster = Cluster(testbed)
    env = testbed.env

    def scenario():
        yield from cluster.deploy_all("bmcast", policy=FULL_SPEED)
        yield from cluster.wait_deployment_complete()

    env.run(until=env.process(scenario()))
    assert cluster.all_baremetal()
    assert cluster.verify_all_deployed()


def test_cluster_phases_mixed_methods():
    testbed = build_testbed(node_count=2, image=small())
    cluster = Cluster(testbed)
    env = testbed.env

    def scenario():
        yield from cluster.deploy_all("baremetal", node_indexes=[0])
        yield from cluster.deploy_all("bmcast", node_indexes=[1],
                                      policy=FULL_SPEED)

    env.run(until=env.process(scenario()))
    phases = list(cluster.phases().values())
    assert "n/a" in phases  # the baremetal node has no platform phase
    assert any(phase in ("deployment", "baremetal") for phase in phases)


def test_cluster_startup_without_instances_rejected():
    testbed = build_testbed(image=small())
    cluster = Cluster(testbed)
    with pytest.raises(ValueError):
        cluster.total_startup_seconds()


# -- OS transparency across images (paper 4.3) -------------------------------------

@pytest.mark.parametrize("factory", [ubuntu_image, centos_image,
                                     windows_image])
def test_bmcast_deploys_any_os_unmodified(factory):
    image = small(factory)
    testbed = build_testbed(image=image)
    provisioner = Provisioner(testbed)
    env = testbed.env

    def scenario():
        instance = yield from provisioner.deploy("bmcast",
                                                 skip_firmware=True,
                                                 policy=FULL_SPEED)
        yield instance.platform.copier.done
        return instance

    instance = env.run(until=env.process(scenario()))
    env.run(until=env.now + 5.0)
    assert instance.guest.booted
    assert instance.platform.phase == "baremetal"
    assert image.verify_deployed(testbed.node.disk.contents,
                                 instance.guest.written)


def test_os_streaming_cannot_deploy_windows():
    """The transparency failure mode BMcast removes (paper 2/6): the
    per-OS streaming driver only exists for the OSs it was ported to."""
    testbed = build_testbed(image=small(windows_image))
    provisioner = Provisioner(testbed)
    env = testbed.env

    def scenario():
        yield from provisioner.deploy("os-streaming", skip_firmware=True)

    with pytest.raises(OsNotSupportedError):
        env.run(until=env.process(scenario()))


def test_windows_boots_slower_but_deploys():
    ubuntu = small(ubuntu_image, 64)
    windows = windows_image(size_bytes=64 * MB,
                            boot_read_bytes=8 * MB,
                            boot_think_seconds=4.0)

    def boot_time(image):
        testbed = build_testbed(image=image)
        provisioner = Provisioner(testbed)
        env = testbed.env

        def scenario():
            return (yield from provisioner.deploy("bmcast",
                                                  skip_firmware=True))

        instance = env.run(until=env.process(scenario()))
        return instance.guest.boot_seconds

    assert boot_time(windows) > boot_time(ubuntu)


# -- server-outage resilience -----------------------------------------------------------

def test_deployment_survives_server_outage():
    """If the storage server goes away mid-deployment, the copier backs
    off instead of dying, and finishes once the server returns."""
    testbed = build_testbed(image=small(size_mb=48))
    provisioner = Provisioner(testbed)
    env = testbed.env

    def scenario():
        instance = yield from provisioner.deploy(
            "bmcast", skip_firmware=True,
            policy=ModerationPolicy(write_interval=5e-3))
        vmm = instance.platform
        # Kill the server mid-deployment.
        yield env.timeout(0.2)
        testbed.server.stop()
        filled_at_outage = vmm.bitmap.filled_count
        yield env.timeout(30.0)
        # Stalled, not dead.
        assert not vmm.bitmap.complete
        assert vmm.copier.fetch_errors > 0
        assert vmm.copier.running
        # Server comes back.
        testbed.server.start()
        yield vmm.copier.done
        return instance, filled_at_outage

    instance, filled_at_outage = env.run(until=env.process(scenario()))
    env.run(until=env.now + 5.0)
    vmm = instance.platform
    assert vmm.bitmap.complete
    assert vmm.phase == "baremetal"
    assert testbed.image.verify_deployed(testbed.node.disk.contents,
                                         instance.guest.written)
