"""Concurrent guest I/O during deployment.

The AHCI controller supports 32 outstanding command slots; a real guest
issues I/O from many processes at once.  These tests stress the mediator
with genuinely concurrent guest streams racing the background copy.
"""

import pytest

from repro.cloud.scenario import build_testbed
from repro.guest.driver_ahci import AhciDriver
from repro.guest.osimage import OsImage
from repro.vmm.bmcast import BmcastVmm
from repro.vmm.moderation import FULL_SPEED, ModerationPolicy

MB = 2**20


def make(size_mb=48, policy=FULL_SPEED):
    image = OsImage(size_bytes=size_mb * MB, boot_read_bytes=2 * MB,
                    boot_think_seconds=0.5)
    testbed = build_testbed(disk_controller="ahci", image=image)
    node = testbed.node
    vmm = BmcastVmm(testbed.env, node.machine, node.vmm_nic,
                    testbed.server_port,
                    image_sectors=image.total_sectors, policy=policy)
    return testbed, vmm


def boot(testbed, vmm):
    env = testbed.env

    def scenario():
        yield from testbed.node.machine.power_on()
        yield from testbed.node.machine.firmware.network_boot()
        yield from vmm.boot()

    env.run(until=env.process(scenario()))


def test_parallel_readers_all_get_image_data():
    testbed, vmm = make()
    env = testbed.env
    boot(testbed, vmm)
    driver = AhciDriver(testbed.node.machine)
    results = {}

    def reader(name, base):
        collected = []
        for index in range(12):
            buffer = yield from driver.read(base + index * 256, 128)
            collected.extend(buffer.runs)
        results[name] = collected

    processes = [
        env.process(reader(f"r{stream}", stream * 16384))
        for stream in range(4)
    ]
    env.run(until=env.all_of(processes))
    for name, runs in results.items():
        for start, end, token in runs:
            assert token == (testbed.image.name, 0), \
                f"{name} read wrong data at {start}"


def test_parallel_writers_and_readers_during_copy():
    testbed, vmm = make(policy=ModerationPolicy(write_interval=2e-3))
    env = testbed.env
    boot(testbed, vmm)
    driver = AhciDriver(testbed.node.machine)
    writes = {}

    def writer(stream):
        base = 10000 + stream * 4096
        for index in range(10):
            lba = base + index * 64
            token = ("stress", stream, index)
            yield from driver.write(lba, 32, token)
            writes[lba] = token

    def reader(stream):
        for index in range(10):
            yield from driver.read(40000 + stream * 2048 + index * 64, 64)

    processes = [env.process(writer(stream)) for stream in range(3)]
    processes += [env.process(reader(stream)) for stream in range(3)]
    env.run(until=env.all_of(processes))
    env.run(until=vmm.copier.done)
    env.run(until=env.now + 5.0)

    disk = testbed.node.disk.contents
    for lba, token in writes.items():
        assert disk.get(lba) == token, f"lost write at {lba}"
    assert vmm.bitmap.complete
    assert vmm.phase == "baremetal"


def test_heavy_concurrency_keeps_interrupt_accounting_clean():
    testbed, vmm = make()
    env = testbed.env
    boot(testbed, vmm)
    driver = AhciDriver(testbed.node.machine)

    def worker(stream):
        for index in range(15):
            yield from driver.read((stream * 7919 + index * 131) % 90000,
                                   16)

    processes = [env.process(worker(stream)) for stream in range(6)]
    env.run(until=env.all_of(processes))
    env.run(until=vmm.copier.done)
    env.run(until=env.now + 5.0)
    machine = testbed.node.machine
    line = vmm.mediator.irq_line
    # Nothing left pending: every interrupt was either consumed by the
    # guest or suppressed as the VMM's own.
    assert not machine.interrupts.is_pending(line)
    assert vmm.mediator.quiescent
