"""Tests for repro.ctl: FSM, demand models, policies, placement,
the controller loop, and the ``ctl`` CLI subcommand."""

import pytest

from repro.aoe.client import AoeInitiator
from repro.cli import main
from repro.cloud import build_testbed
from repro.ctl import (
    DEPLOYING,
    FREE,
    NETBOOTING,
    READY,
    STATES,
    TRANSITIONS,
    CacheAwarePlacement,
    ElasticController,
    FlashCrowdDemand,
    LifecycleError,
    NodePool,
    NodeRecord,
    Observation,
    ReactivePolicy,
    RoundRobinPlacement,
    StepDemand,
    TraceDemand,
    dump_trace,
    image_block_set,
    load_trace,
)
from repro.ctl.policy import HeadroomPolicy, PredictivePolicy
from repro.guest.osimage import OsImage
from repro.sim import Environment

MB = 2**20


def small_image(mb=32):
    return OsImage(size_bytes=mb * MB, boot_read_bytes=2 * MB,
                   boot_think_seconds=0.5)


def make_pool(node_count=2, p2p=True, **kwargs):
    testbed = build_testbed(node_count=node_count, server_count=1,
                            p2p=p2p, image=small_image())
    return testbed, NodePool(testbed, vmxoff_mode="resident", **kwargs)


# -- lifecycle FSM -------------------------------------------------------------

def test_transitions_table_is_closed_over_states():
    assert set(TRANSITIONS) == set(STATES)
    for targets in TRANSITIONS.values():
        assert set(targets) <= set(STATES)


def test_illegal_transition_raises_and_legal_one_is_stamped():
    record = NodeRecord(index=0)
    with pytest.raises(LifecycleError):
        record.transition(1.0, DEPLOYING)  # free -> deploying skips netboot
    record.transition(2.0, NETBOOTING)
    assert record.state == NETBOOTING
    assert record.since == 2.0
    assert record.history == [(2.0, NETBOOTING)]


def test_reclaim_refused_from_free():
    _, pool = make_pool(node_count=1, p2p=False)
    with pytest.raises(LifecycleError):
        next(pool.reclaim(0))


def test_assign_and_release_guard_states():
    _, pool = make_pool(node_count=1, p2p=False)
    with pytest.raises(LifecycleError):
        pool.assign(0, object())  # node is free, not idle-ready
    with pytest.raises(LifecycleError):
        pool.release(0)


def test_deploy_walks_the_forward_path():
    testbed, pool = make_pool(node_count=1, p2p=False)
    env = testbed.env
    env.run(until=env.process(pool.deploy(0), name="deploy"))
    record = pool.nodes[0]
    assert record.state == READY
    assert [state for _, state in record.history] \
        == [FREE, NETBOOTING, DEPLOYING, READY]
    assert pool.time_to_ready and pool.time_to_ready[0] > 0.0
    assert pool.counts()[READY] == 1
    assert pool.idle_ready() == [record]


# -- demand models -------------------------------------------------------------

def windows(demand, tick, until):
    out = []
    t = 0.0
    while t < until:
        out.extend(demand.arrivals(t, t + tick))
        t += tick
    return out


def test_demand_is_deterministic_per_seed():
    first = windows(StepDemand(seed=7), 15.0, 3600.0)
    second = windows(StepDemand(seed=7), 15.0, 3600.0)
    assert [(r.arrived, r.hold) for r in first] \
        == [(r.arrived, r.hold) for r in second]
    different = windows(StepDemand(seed=8), 15.0, 3600.0)
    assert [(r.arrived, r.hold) for r in first] \
        != [(r.arrived, r.hold) for r in different]


def test_step_demand_rate_steps_up():
    demand = StepDemand(base=1 / 240.0, after=1 / 60.0, step_at=1800.0)
    before = [r for r in windows(demand, 15.0, 3600.0)
              if r.arrived < 1800.0]
    after = [r for r in windows(StepDemand(base=1 / 240.0,
                                           after=1 / 60.0,
                                           step_at=1800.0),
                                15.0, 3600.0)
             if r.arrived >= 1800.0]
    assert len(after) > 2 * len(before)


def test_flash_crowd_spikes_then_decays():
    demand = FlashCrowdDemand(base=1 / 240.0, factor=12.0,
                              spike_at=900.0, spike_seconds=600.0)
    assert demand.rate(0.0) == pytest.approx(1 / 240.0)
    assert demand.rate(900.0) == pytest.approx(12 / 240.0)
    assert demand.rate(900.0) > demand.rate(1500.0) > demand.rate(1e6)


def test_accumulator_carries_fractional_demand():
    demand = StepDemand(base=1 / 240.0, after=1 / 240.0, step_at=1e9)
    arrivals = windows(demand, 60.0, 960.0)  # 16 windows x 0.25 req
    assert len(arrivals) == 4


def test_trace_round_trip(tmp_path):
    path = tmp_path / "trace.json"
    original = windows(FlashCrowdDemand(seed=3), 15.0, 1800.0)
    dump_trace(original, path)
    loaded = load_trace(path)
    assert [(r.arrived, r.hold, r.deadline) for r in loaded] == [
        (pytest.approx(r.arrived, abs=1e-6),
         pytest.approx(r.hold, abs=1e-6), r.deadline)
        for r in original]
    replayed = windows(TraceDemand(loaded), 15.0, 1800.0)
    assert [r.arrived for r in replayed] \
        == [r.arrived for r in loaded]


def test_request_slo_accounting():
    request = windows(StepDemand(), 15.0, 3600.0)[0]
    assert request.time_to_ready is None
    assert not request.met_deadline
    request.ready = request.arrived + request.deadline + 1.0
    assert not request.met_deadline
    request.ready = request.arrived + 5.0
    assert request.met_deadline


# -- policies ------------------------------------------------------------------

def obs(now=0.0, queue=0, busy=0, idle=0, free=8, deploying=0,
        reclaiming=0, arrived=0, completed=0):
    return Observation(now=now, queue_depth=queue, busy=busy, idle=idle,
                       free=free, deploying=deploying,
                       reclaiming=reclaiming, arrived=arrived,
                       completed=completed)


def test_reactive_scales_up_per_queue_depth():
    policy = ReactivePolicy(queue_high=2, up_per=2)
    decision = policy.decide(obs(queue=5, busy=1, free=7))
    assert decision.target == 1 + 3  # ceil(5/2) extra
    assert "queue" in decision.reason


def test_reactive_up_capped_at_fleet_size():
    policy = ReactivePolicy(queue_high=2, up_per=1)
    decision = policy.decide(obs(queue=50, busy=2, idle=0, free=2))
    assert decision.target == 4  # total nodes


def test_reactive_shrinks_only_after_settle_and_cooldown():
    policy = ReactivePolicy(settle_ticks=3, cooldown=300.0, idle_low=2)
    quiet = dict(queue=0, busy=1, idle=3, free=4)
    assert policy.decide(obs(now=0.0, **quiet)).target == 4   # hold
    assert policy.decide(obs(now=15.0, **quiet)).target == 4  # hold
    shrink = policy.decide(obs(now=30.0, **quiet))
    assert shrink.target < 4
    assert shrink.target >= 2  # never below busy + 1
    # A second shrink is blocked by the cooldown even when calm.
    for tick in range(4):
        decision = policy.decide(obs(now=45.0 + 15 * tick, **quiet))
        assert decision.target == 4  # provisioned -> hold
    cooled = policy.decide(obs(now=400.0, **quiet))
    assert cooled.target < 4


def test_predictive_forecasts_from_rate_and_hold():
    policy = PredictivePolicy(window_ticks=4, margin=1.0, min_nodes=1)
    policy.note_hold(600.0)
    target = None
    for tick in range(4):
        decision = policy.decide(obs(now=tick * 100.0, arrived=1,
                                     busy=1, free=7))
        target = decision.target
    # 4 arrivals / 300 s x 600 s hold = 8 concurrent, capped at fleet.
    assert target == 8


def test_headroom_tracks_busy_plus_queue():
    policy = HeadroomPolicy(headroom=2)
    assert policy.decide(obs(busy=3, queue=1, free=6)).target == 6
    assert policy.decide(obs(busy=0, queue=0, free=8)).target == 2


# -- placement -----------------------------------------------------------------

def free_records(*indexes):
    return [NodeRecord(index=i, state=FREE) for i in indexes]


def test_round_robin_rotates_through_free_nodes():
    placement = RoundRobinPlacement()
    records = free_records(0, 1, 2)
    picks = [placement.choose(None, records, set()) for _ in range(4)]
    assert picks == [0, 1, 2, 0]


def test_cache_aware_prefers_warm_and_falls_back_cold():
    _, pool = make_pool(node_count=3, p2p=False)
    placement = CacheAwarePlacement()
    blocks = image_block_set(pool.testbed)
    records = pool.free_nodes()
    # All cold: wear-levels like round-robin.
    assert placement.choose(pool, records, blocks) == 0
    # Node 2 kept warm blocks from a preserve-reclaim: it wins.
    pool.nodes[2].warm_blocks = set(list(blocks)[:4])
    assert placement.choose(pool, records, blocks) == 2


def test_image_block_set_covers_the_image():
    testbed, _ = make_pool(node_count=1, p2p=True)
    blocks = image_block_set(testbed)
    assert blocks == set(range(len(blocks)))
    assert len(blocks) > 0


# -- per-target RTT isolation --------------------------------------------------

def test_rtt_estimators_do_not_leak_across_targets():
    client = AoeInitiator(Environment(), nic=None, server="origin")
    origin = client.estimator_for("origin")
    assert origin is client.rtt  # the primary-server estimator
    peer = client.estimator_for("peer-1")
    assert peer is not origin
    assert peer is client.estimator_for("peer-1")
    before = origin.rto
    for _ in range(16):
        peer.observe(1e-5)  # microsecond warm-peer replies
    assert origin.rto == before  # origin's RTO must not collapse
    assert peer.rto < before


# -- the controller loop -------------------------------------------------------

def test_controller_absorbs_a_flash_crowd():
    testbed, pool = make_pool(node_count=4, p2p=True)
    controller = ElasticController(
        pool, FlashCrowdDemand(spike_at=300.0, seed=20150314),
        ReactivePolicy(), CacheAwarePlacement(), tick=15.0)
    env = testbed.env
    env.run(until=env.process(controller.run(1500.0), name="ctl"))
    report = controller.report()
    assert report["requests"] > 0
    assert report["served"] >= 0.9 * report["requests"]
    assert report["scale_ups"] >= 1
    assert 0.0 <= report["slo_attainment"] <= 1.0
    assert report["fleet"]["nodes"] == 4
    assert controller.decisions  # the policy acted at least once
    assert report["wasted_node_seconds"] >= 0.0


def test_controller_give_up_abandons_stale_requests():
    testbed, pool = make_pool(node_count=1, p2p=False)
    # One node, heavy step demand, and no patience: most requests must
    # be abandoned rather than queued forever.
    controller = ElasticController(
        pool, StepDemand(base=1 / 30.0, after=1 / 30.0, step_at=0.0),
        ReactivePolicy(min_nodes=1), RoundRobinPlacement(),
        tick=15.0, give_up_after=60.0)
    env = testbed.env
    env.run(until=env.process(controller.run(900.0), name="ctl"))
    report = controller.report()
    assert report["abandoned"] > 0
    assert report["slo_attainment"] < 1.0


# -- CLI -----------------------------------------------------------------------

def test_cli_ctl_runs_a_control_loop(capsys):
    assert main(["ctl", "--nodes", "3", "--demand", "step",
                 "--duration", "900", "--image-gb", "0.03125",
                 "--p2p"]) == 0
    out = capsys.readouterr().out
    assert "fleet at end" in out
    assert "scale decisions" in out


def test_cli_ctl_demand_trace_round_trip(tmp_path, capsys):
    trace = tmp_path / "demand.json"
    assert main(["ctl", "--nodes", "2", "--demand", "flash-crowd",
                 "--duration", "1200", "--image-gb", "0.03125",
                 "--dump-demand", str(trace)]) == 0
    first = capsys.readouterr().out
    assert trace.exists()
    assert main(["ctl", "--nodes", "2", "--demand-trace", str(trace),
                 "--duration", "1200", "--image-gb", "0.03125"]) == 0
    second = capsys.readouterr().out

    def decisions(text):
        lines = text.splitlines()
        start = lines.index("scale decisions:")
        return [line for line in lines[start:]
                if "demand trace written" not in line]

    assert decisions(first) == decisions(second)
