"""The reclaim path: resident vs full re-virtualization, scrub vs
preserve, taint exclusion, warm peers feeding the next scale-up, and
replay determinism over a whole grow -> shrink -> grow run."""

from repro import params
from repro.analysis import check_replay
from repro.cloud import build_testbed
from repro.ctl import (
    FREE,
    NodePool,
    elasticity_scenario,
)
from repro.ctl.lifecycle import RESIDENT_REARM_SECONDS
from repro.guest.osimage import OsImage
from repro.storage.blockdev import BlockOp, BlockRequest

MB = 2**20


def small_image(mb=32):
    return OsImage(size_bytes=mb * MB, boot_read_bytes=2 * MB,
                   boot_think_seconds=0.5)


def make_pool(node_count=1, p2p=True, vmxoff_mode="resident", **kwargs):
    testbed = build_testbed(node_count=node_count, server_count=1,
                            p2p=p2p, image=small_image(), **kwargs)
    return testbed, NodePool(testbed, vmxoff_mode=vmxoff_mode)


def run(env, generator, name="scenario"):
    process = env.process(generator, name=name)
    env.run(until=process)
    return process.value


def deploy_to_baremetal(testbed, pool, index=0):
    """Deploy one node and wait until de-virtualization completes."""

    def scenario():
        yield from pool.deploy(index)
        while pool.nodes[index].vmm.phase != "baremetal":
            yield testbed.env.timeout(1.0)

    run(testbed.env, scenario(), name=f"deploy-{index}")


# -- resident vs full re-virtualization ---------------------------------------

def test_resident_reclaim_is_subsecond_after_drain():
    testbed, pool = make_pool(vmxoff_mode="resident")
    deploy_to_baremetal(testbed, pool)
    elapsed = run(testbed.env, pool.reclaim(0, preserve=True), "reclaim")
    assert pool.nodes[0].state == FREE
    # Drain + re-arm + snapshot write: nowhere near a firmware cycle.
    assert elapsed < pool.drain_seconds + RESIDENT_REARM_SECONDS + 2.0


def test_full_mode_reclaim_pays_the_firmware_cycle():
    testbed, pool = make_pool(vmxoff_mode="full")
    deploy_to_baremetal(testbed, pool)
    elapsed = run(testbed.env, pool.reclaim(0, preserve=True), "reclaim")
    assert pool.nodes[0].state == FREE
    assert elapsed > params.FIRMWARE_INIT_SECONDS


# -- scrub vs preserve ---------------------------------------------------------

def read_sector(testbed, index, lba):
    request = BlockRequest(BlockOp.READ, lba, 1)
    run(testbed.env, testbed.nodes[index].disk.execute(request), "read")
    runs = request.buffer.runs
    return runs[0][2] if runs else None


def test_scrub_wipes_the_image_and_clears_the_warm_set():
    testbed, pool = make_pool()
    deploy_to_baremetal(testbed, pool)
    vmm = pool.nodes[0].vmm
    assert vmm.pristine_blocks()  # the image really was copied
    assert read_sector(testbed, 0, 0) is not None
    run(testbed.env, pool.reclaim(0, preserve=False), "scrub")
    record = pool.nodes[0]
    assert record.state == FREE
    assert record.warm_blocks == set()
    assert read_sector(testbed, 0, 0) is None  # tenant data gone
    # The protected bitmap-save region must not survive either: a new
    # deployment starts cold, not from a stale snapshot.
    instance = run(testbed.env, pool.deploy(0), "redeploy")
    assert not instance.platform.resumed_from_disk


def test_preserve_keeps_pristine_blocks_and_resumes_warm():
    testbed, pool = make_pool()
    deploy_to_baremetal(testbed, pool)
    first_ttr = pool.time_to_ready[0]
    pristine = pool.nodes[0].vmm.pristine_blocks()
    run(testbed.env, pool.reclaim(0, preserve=True), "reclaim")
    record = pool.nodes[0]
    assert record.warm_blocks == pristine
    assert record.warm_blocks

    instance = run(testbed.env, pool.deploy(0), "redeploy")
    vmm = instance.platform
    assert vmm.resumed_from_disk
    assert vmm.router.origin_fetches == 0  # nothing refetched
    assert pool.time_to_ready[-1] < first_ttr
    assert record.warm_blocks == set()  # consumed by the deploy


def test_guest_written_blocks_are_not_preserved():
    testbed, pool = make_pool()
    deploy_to_baremetal(testbed, pool)
    vmm = pool.nodes[0].vmm
    # A bare-metal guest overwrites the start of the image (tenant
    # data): direct-I/O taint must exclude that block from preserve.
    block_sectors = vmm.bitmap.block_sectors
    request = BlockRequest(BlockOp.WRITE, 0, block_sectors,
                           origin="guest")
    request.buffer.fill_constant("tenant-secret")
    run(testbed.env, testbed.nodes[0].disk.execute(request), "write")
    assert 0 in vmm.tainted_blocks
    assert 0 not in vmm.pristine_blocks()
    run(testbed.env, pool.reclaim(0, preserve=True), "reclaim")
    assert 0 not in pool.nodes[0].warm_blocks
    assert pool.nodes[0].warm_blocks  # untouched blocks still warm


# -- warm peers feed the next scale-up ----------------------------------------

def test_reclaimed_warm_node_serves_the_next_deployment():
    testbed, pool = make_pool(node_count=2)
    deploy_to_baremetal(testbed, pool, index=0)
    run(testbed.env, pool.reclaim(0, preserve=True), "reclaim")
    assert pool.nodes[0].state == FREE

    run(testbed.env, pool.deploy(1), "deploy-cold")
    router = pool.nodes[1].vmm.router
    warm_port = pool.peer_port_of(0)
    assert router.peer_hits_by_target.get(warm_port, 0) > 0
    assert router.peer_hits > 0


# -- replay determinism over grow -> shrink -> grow ---------------------------

def test_autoscaling_run_replays_identically():
    scenario = elasticity_scenario(lambda: small_image(16),
                                   node_count=4, duration=1800.0)
    report = check_replay(scenario, runs=2)
    assert not report.divergent, report.describe()
