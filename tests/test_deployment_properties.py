"""Property-based end-to-end tests of deployment consistency.

The paper's hardest correctness claim (3.3): no interleaving of guest
I/O and background copy may ever lose a guest write or return wrong
data to a guest read.  Hypothesis drives randomized guest workloads
against a deploying instance and checks every read against an oracle,
plus the final disk against the image.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import params
from repro.cloud.scenario import build_testbed
from repro.guest.kernel import GuestOs
from repro.guest.osimage import OsImage
from repro.util.intervalmap import IntervalMap
from repro.vmm.bmcast import BmcastVmm
from repro.vmm.moderation import FULL_SPEED, ModerationPolicy

MB = 2**20
IMAGE_MB = 24
IMAGE_SECTORS = IMAGE_MB * MB // params.SECTOR_BYTES


@st.composite
def guest_workloads(draw):
    """A random schedule of guest operations during deployment."""
    operations = []
    for _ in range(draw(st.integers(3, 14))):
        kind = draw(st.sampled_from(["read", "write", "write", "pause"]))
        lba = draw(st.integers(0, IMAGE_SECTORS - 2049))
        count = draw(st.integers(1, 2048))
        delay = draw(st.floats(0.0, 0.2))
        operations.append((kind, lba, count, delay))
    return operations


def run_workload(operations, controller, policy):
    image = OsImage(size_bytes=IMAGE_MB * MB, boot_read_bytes=1 * MB,
                    boot_think_seconds=0.2)
    testbed = build_testbed(disk_controller=controller, image=image)
    node = testbed.node
    env = testbed.env
    vmm = BmcastVmm(env, node.machine, node.vmm_nic, testbed.server_port,
                    image_sectors=image.total_sectors, policy=policy)
    guest = GuestOs(node.machine, image)

    # Oracle: what every sector must read as (image token unless the
    # guest overwrote it).
    oracle = IntervalMap()
    for start, end, token in image.contents.runs():
        oracle.set_range(start, end - start, token)
    failures = []

    def scenario():
        yield from node.machine.power_on()
        yield from node.machine.firmware.network_boot()
        yield from vmm.boot()
        for kind, lba, count, delay in operations:
            if delay:
                yield env.timeout(delay)
            if kind == "pause":
                continue
            if kind == "write":
                token = yield from _guest_write(guest, lba, count)
                oracle.set_range(lba, count, token)
            else:
                buffer = yield from guest.read(lba, count)
                expected = list(oracle.runs_in(lba, count))
                if buffer.runs != expected:
                    failures.append((lba, count, buffer.runs, expected))
        yield vmm.copier.done

    env.run(until=env.process(scenario()))
    env.run(until=env.now + 5.0)
    return testbed, vmm, guest, oracle, failures


def _guest_write(guest, lba, count):
    guest._write_counter += 1
    token = (guest.name, "prop", guest._write_counter)
    yield from guest.driver.write(lba, count, token)
    guest.written.set_range(lba, count, True)
    return token


def check_final_state(testbed, vmm, guest, oracle, failures):
    assert not failures, f"guest reads returned wrong data: {failures[0]}"
    assert vmm.bitmap.complete
    assert vmm.phase == "baremetal"
    # Every sector of the image region must match the oracle.
    disk = testbed.node.disk.contents
    for start, end, token in oracle.runs():
        for run_start, run_end, disk_token in disk.runs_in(
                start, end - start):
            assert disk_token == token, (
                f"sector {run_start}: disk has {disk_token!r}, "
                f"oracle says {token!r}")


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(guest_workloads())
def test_property_no_lost_writes_ahci_fullspeed(operations):
    state = run_workload(operations, "ahci", FULL_SPEED)
    check_final_state(*state)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(guest_workloads())
def test_property_no_lost_writes_ide_fullspeed(operations):
    state = run_workload(operations, "ide", FULL_SPEED)
    check_final_state(*state)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(guest_workloads())
def test_property_no_lost_writes_moderated(operations):
    policy = ModerationPolicy(write_interval=2e-3,
                              suspend_interval=20e-3,
                              guest_io_threshold=50.0)
    state = run_workload(operations, "ahci", policy)
    check_final_state(*state)


def test_oracle_harness_detects_corruption():
    """Meta-test: the checker itself must catch a planted corruption."""
    state = run_workload([("write", 100, 50, 0.0)], "ahci", FULL_SPEED)
    testbed, vmm, guest, oracle, failures = state
    testbed.node.disk.contents.set_range(100, 1, "corrupted")
    with pytest.raises(AssertionError):
        check_final_state(*state)
