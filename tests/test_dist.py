"""Tests for repro.dist: selectors, peer directory, chunk service, router."""

import pytest

from repro import params
from repro.aoe.client import AoeInitiator, AoeNakError
from repro.aoe.rtt import RttEstimator
from repro.cloud import Cluster, build_testbed
from repro.dist import (
    DistFabric,
    FetchRouter,
    PeerChunkService,
    PeerDirectory,
    make_selector,
)
from repro.dist.selector import POLICIES, ConsistentHashSelector
from repro.guest.osimage import OsImage
from repro.net import EthernetSwitch, Nic
from repro.sim import Environment
from repro.storage.disk import Disk
from repro.vmm.bitmap import BlockBitmap
from repro.vmm.moderation import FULL_SPEED

MB = 2**20
REPLICAS = ["server", "server-r1", "server-r2"]
BLOCK_SECTORS = params.COPY_BLOCK_BYTES // params.SECTOR_BYTES


# -- selection policies ----------------------------------------------------------

def test_round_robin_cycles_in_order():
    selector = make_selector("round-robin", REPLICAS)
    picks = [selector.select(0, 8) for _ in range(6)]
    assert picks == REPLICAS + REPLICAS


def test_consistent_hash_same_block_same_replica():
    selector = make_selector("consistent-hash", REPLICAS)
    lba = 5 * BLOCK_SECTORS
    picks = {selector.select(lba + offset, 8) for offset in (0, 7, 100)}
    assert len(picks) == 1  # whole block maps to one replica


def test_consistent_hash_deterministic_across_instances():
    first = make_selector("consistent-hash", REPLICAS)
    second = make_selector("consistent-hash", REPLICAS)
    for block in range(32):
        lba = block * BLOCK_SECTORS
        assert first.select(lba, 8) == second.select(lba, 8)


def test_consistent_hash_spreads_blocks():
    selector = make_selector("consistent-hash", REPLICAS)
    picks = {selector.select(block * BLOCK_SECTORS, 8)
             for block in range(64)}
    assert len(picks) == len(REPLICAS)


def test_consistent_hash_mostly_stable_when_replica_added():
    before = ConsistentHashSelector(REPLICAS)
    after = ConsistentHashSelector(REPLICAS + ["server-r3"])
    moved = sum(
        1 for block in range(256)
        if before.select(block * BLOCK_SECTORS, 8)
        != after.select(block * BLOCK_SECTORS, 8))
    # Adding one replica to three should move roughly 1/4 of the keys,
    # not reshuffle everything.
    assert moved < 256 // 2


def test_least_outstanding_prefers_idle_replica():
    selector = make_selector("least-outstanding", REPLICAS)
    selector.note_sent("server")
    selector.note_sent("server")
    selector.note_sent("server-r1")
    assert selector.select(0, 8) == "server-r2"
    selector.note_complete("server", 0.001)
    selector.note_complete("server", 0.001)
    selector.note_sent("server-r2")
    assert selector.select(0, 8) == "server"


def test_rtt_aware_probes_then_prefers_fastest():
    selector = make_selector("rtt-aware", REPLICAS)
    # Explore-first: every replica gets probed before any repeats.
    probes = set()
    for _ in REPLICAS:
        target = selector.select(0, 8)
        probes.add(target)
        selector.note_complete(target, 0.010)
    assert probes == set(REPLICAS)
    selector.note_complete("server", 0.050)
    selector.note_complete("server-r1", 0.001)
    selector.note_complete("server-r2", 0.080)
    picks = [selector.select(0, 8) for _ in range(8)]
    assert picks.count("server-r1") >= 6  # periodic exploration allowed


def test_selector_candidates_restrict_pool():
    selector = make_selector("round-robin", REPLICAS)
    picks = {selector.select(0, 8, candidates=["server-r1"])
             for _ in range(4)}
    assert picks == {"server-r1"}


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        make_selector("random", REPLICAS)
    with pytest.raises(ValueError):
        DistFabric(REPLICAS, select_policy="no-such-policy")


def test_policy_registry_covers_all():
    for policy in POLICIES:
        assert make_selector(policy, REPLICAS) is not None


# -- RTT estimator (Karn satellite) ------------------------------------------------

def test_karn_retransmitted_reply_does_not_feed_estimator():
    env = Environment()
    switch = EthernetSwitch(env)
    nic = Nic(env, switch, "vmm")
    Nic(env, switch, "server")
    initiator = AoeInitiator(env, nic, "server")
    from repro.aoe.client import _Transaction
    from repro.aoe.protocol import AoeAck, AoeCommand

    command = AoeCommand(0, "write", 0, 8, payload_runs=((0, 8, "x"),))
    transaction = _Transaction(env, command, "server", "aoe")
    transaction.retries = 1  # a retransmission happened: ambiguous RTT
    initiator._pending[0] = transaction
    before = (initiator.rtt.srtt, initiator.rtt.samples)
    initiator._on_ack(AoeAck(0))
    assert transaction.done.triggered
    assert (initiator.rtt.srtt, initiator.rtt.samples) == before

    # The unambiguous twin does feed it.
    clean = _Transaction(env, AoeCommand(1, "write", 0, 8), "server", "aoe")
    initiator._pending[1] = clean
    initiator._on_ack(AoeAck(1))
    assert initiator.rtt.samples == before[1] + 1


def test_rtt_estimator_backoff_inflates_rto():
    estimator = RttEstimator()
    estimator.observe(0.010)
    rto = estimator.rto
    estimator.back_off()
    assert estimator.rto > rto


# -- peer directory ---------------------------------------------------------------

def test_directory_superset_lookup_and_exclude():
    directory = PeerDirectory()
    directory.publish("b-peer", {1, 2, 3})
    directory.publish("a-peer", {2, 3})
    assert directory.peers_for([2, 3]) == ["a-peer", "b-peer"]  # sorted
    assert directory.peers_for([1, 2]) == ["b-peer"]
    assert directory.peers_for([2], exclude="a-peer") == ["b-peer"]
    assert directory.peers_for([9]) == []


def test_directory_invalidate_and_withdraw():
    directory = PeerDirectory()
    directory.publish("a-peer", {1, 2})
    directory.invalidate("a-peer", 1)
    assert directory.peers_for([1]) == []
    assert directory.peers_for([2]) == ["a-peer"]
    directory.withdraw("a-peer")
    assert len(directory) == 0
    directory.invalidate("gone", 5)  # no-op, no error


# -- peer chunk service -----------------------------------------------------------

def _peer_rig():
    env = Environment()
    switch = EthernetSwitch(env)
    disk = Disk(env)
    bitmap = BlockBitmap(image_sectors=8 * BLOCK_SECTORS)
    directory = PeerDirectory()
    peer_nic = Nic(env, switch, "node0-eth1-peer")
    service = PeerChunkService(env, peer_nic, disk, bitmap, directory)
    service.start()
    client_nic = Nic(env, switch, "client")
    initiator = AoeInitiator(env, client_nic, "node0-eth1-peer")
    return env, disk, bitmap, service, directory, initiator


def _fill(bitmap: BlockBitmap, disk: Disk, block: int) -> None:
    bitmap.try_claim(block)
    start, count = bitmap.block_range(block)
    disk.contents.set_range(start, count, f"img{block}")
    bitmap.commit_fill(block)


def test_peer_serves_filled_block():
    env, disk, bitmap, service, directory, initiator = _peer_rig()
    _fill(bitmap, disk, 0)

    def scenario():
        runs = yield from initiator.read_blocks(
            0, 16, protocol="aoe-peer")
        return runs

    runs = env.run(until=env.process(scenario()))
    assert runs == [(0, 16, "img0")]
    assert service.chunks_served == 1
    assert service.naks_sent == 0


def test_peer_naks_unfilled_block():
    env, disk, bitmap, service, directory, initiator = _peer_rig()

    def scenario():
        yield from initiator.read_blocks(0, 16, protocol="aoe-peer")

    with pytest.raises(AoeNakError):
        env.run(until=env.process(scenario()))
    assert service.naks_sent == 1
    assert service.chunks_served == 0


def test_guest_write_taints_block():
    env, disk, bitmap, service, directory, initiator = _peer_rig()
    _fill(bitmap, disk, 0)
    _fill(bitmap, disk, 1)
    assert service.summary() == {0, 1}
    # A mediated guest write dirties block 0: no longer pristine.
    bitmap.record_guest_write(4, 8)
    assert service.summary() == {1}
    assert not service.servable(0, 16)
    assert service.servable(BLOCK_SECTORS, 16)


def test_post_devirt_disk_writes_taint():
    env, disk, bitmap, service, directory, initiator = _peer_rig()
    _fill(bitmap, disk, 2)
    service.mark_direct_io()

    from repro.storage.blockdev import BlockOp, BlockRequest

    def scenario():
        request = BlockRequest(BlockOp.WRITE,
                               2 * BLOCK_SECTORS, 8)
        request.buffer.runs = [(2 * BLOCK_SECTORS,
                                2 * BLOCK_SECTORS + 8, "guest")]
        yield from disk.execute(request)

    env.run(until=env.process(scenario()))
    assert 2 in service.tainted


def test_publish_batches_and_stop_withdraws():
    env, disk, bitmap, service, directory, initiator = _peer_rig()
    batch = PeerChunkService.ANNOUNCE_BLOCKS
    for block in range(batch - 1):
        _fill(bitmap, disk, block)
        service.note_block_filled(block)
    assert len(directory) == 0  # still below the announce batch
    _fill(bitmap, disk, batch - 1)
    service.note_block_filled(batch - 1)
    assert directory.advertised("node0-eth1-peer") == set(range(batch))
    service.stop()
    assert len(directory) == 0


# -- router bulk-segment splitting -------------------------------------------------

IMAGE_BLOCKS = 8


def _router_rig():
    """A FetchRouter over one origin replica on a p2p fabric.

    Peers are added with :func:`_add_peer`; the rig drives
    ``router.read_blocks(..., bulk=True)`` directly so the
    ``_read_segmented`` splitting logic is exercised without a full
    deployment around it.
    """
    from repro.aoe.server import AoeServer, ImageStore
    from repro.util.intervalmap import IntervalMap

    env = Environment()
    switch = EthernetSwitch(env)
    contents = IntervalMap()
    contents.set_range(0, IMAGE_BLOCKS * BLOCK_SECTORS, "origin")
    store = ImageStore(env, contents, IMAGE_BLOCKS * BLOCK_SECTORS)
    server_nic = Nic(env, switch, "server", rx_ring_size=8192)
    server = AoeServer(env, server_nic, store)
    server.start()
    fabric = DistFabric(["server"], p2p=True)
    node_nic = Nic(env, switch, "node1-eth1")
    initiator = AoeInitiator(env, node_nic, "server")
    router = FetchRouter(env, initiator, fabric, "node1-eth1")
    return env, switch, fabric, router


def _add_peer(env, switch, fabric, name, filled, advertised=None):
    """A peer chunk service holding ``filled`` blocks.

    ``advertised`` defaults to ``filled``; pass a superset to model a
    directory entry that outlived the peer's ability to serve it.
    """
    disk = Disk(env)
    bitmap = BlockBitmap(image_sectors=IMAGE_BLOCKS * BLOCK_SECTORS)
    nic = Nic(env, switch, name)
    service = PeerChunkService(env, nic, disk, bitmap, fabric.directory)
    service.start()
    for block in filled:
        _fill(bitmap, disk, block)
    fabric.directory.publish(
        name, set(filled if advertised is None else advertised))
    return service


def _read_bulk(env, router, lba, sector_count):
    def scenario():
        runs = yield from router.read_blocks(lba, sector_count, bulk=True)
        return runs

    return env.run(until=env.process(scenario()))


def _assert_contiguous(runs, lba, sector_count):
    assert runs[0][0] == lba
    assert runs[-1][1] == lba + sector_count
    for (_, prev_end, _), (start, _, _) in zip(runs, runs[1:]):
        assert start == prev_end


def test_segmented_read_splits_single_block_runs():
    # Alternating coverage cuts the run into eight single-block
    # segments — the narrowest split _read_segmented can produce.
    env, switch, fabric, router = _router_rig()
    evens = [block for block in range(IMAGE_BLOCKS) if block % 2 == 0]
    service = _add_peer(env, switch, fabric, "node0-eth1-peer", evens)

    runs = _read_bulk(env, router, 0, IMAGE_BLOCKS * BLOCK_SECTORS)
    _assert_contiguous(runs, 0, IMAGE_BLOCKS * BLOCK_SECTORS)
    # Even blocks carry the peer's per-block fill tokens; odd blocks
    # carry the origin image token.
    for block in evens:
        assert (block * BLOCK_SECTORS, (block + 1) * BLOCK_SECTORS,
                f"img{block}") in runs
    assert router.peer_hits == len(evens)
    assert router.origin_fetches == IMAGE_BLOCKS - len(evens)
    assert router.peer_misses == 0
    assert service.chunks_served == len(evens)


def test_segmented_read_splits_at_peer_boundary_mid_run():
    # Peer A covers blocks [0, 1], peer B covers [2, 3]: no single
    # peer covers the whole run, so the widest-prefix walk must stop
    # at the boundary and emit exactly two segments.
    env, switch, fabric, router = _router_rig()
    first = _add_peer(env, switch, fabric, "node0-eth1-peer", [0, 1])
    second = _add_peer(env, switch, fabric, "node2-eth1-peer", [2, 3])

    runs = _read_bulk(env, router, 0, 4 * BLOCK_SECTORS)
    _assert_contiguous(runs, 0, 4 * BLOCK_SECTORS)
    assert router.peer_hits == 2
    assert router.origin_fetches == 0
    assert router.peer_misses == 0
    # One bulk command per segment, one segment per peer.
    assert first.chunks_served == 1
    assert second.chunks_served == 1
    assert router.peer_hits_by_target == {"node0-eth1-peer": 1,
                                          "node2-eth1-peer": 1}


def test_segmented_read_survives_peer_withdrawal_between_split_and_fetch():
    # The directory still advertises blocks [0, 1] but the peer can no
    # longer serve them (withdrawn/tainted after the split consulted
    # the directory): the peer NAKs, the router repairs the directory
    # and falls back to origin, and the caller still gets the bytes.
    env, switch, fabric, router = _router_rig()
    service = _add_peer(env, switch, fabric, "node0-eth1-peer",
                        filled=[], advertised=[0, 1])

    runs = _read_bulk(env, router, 0, 4 * BLOCK_SECTORS)
    _assert_contiguous(runs, 0, 4 * BLOCK_SECTORS)
    assert all(token == "origin" for _, _, token in runs)
    assert router.peer_misses == 1
    assert router.peer_hits == 0
    assert router.origin_fetches >= 1
    assert service.naks_sent == 1
    # The NAK repaired the stale directory entry.
    assert fabric.directory.peers_for([0]) == []
    assert fabric.directory.peers_for([1]) == []
    # The next read routes straight to origin with no peer attempt.
    _read_bulk(env, router, 0, 2 * BLOCK_SECTORS)
    assert router.peer_misses == 1


# -- fabric + full deployment ------------------------------------------------------

def _small_image() -> OsImage:
    return OsImage(size_bytes=128 * MB, boot_read_bytes=8 * MB,
                   boot_think_seconds=1.0)


def test_fabric_blocks_of_and_ports():
    fabric = DistFabric(REPLICAS)
    assert fabric.blocks_of(0, 8) == [0]
    assert fabric.blocks_of(BLOCK_SECTORS - 1, 2) == [0, 1]
    assert fabric.peer_port_of("node3-eth1") == "node3-eth1-peer"
    assert fabric.describe()["replicas"] == REPLICAS


def test_build_testbed_replicas_share_image():
    testbed = build_testbed(server_count=3, image=_small_image())
    assert testbed.server_ports == ["server", "server-r1", "server-r2"]
    assert testbed.servers[0] is testbed.server
    assert all(store.contents is testbed.image.contents
               for store in testbed.stores)
    assert testbed.fabric.replica_ports == testbed.server_ports
    # No p2p: nodes carry no peer port.
    assert testbed.node.peer_nic is None


def test_replicated_deployment_completes_and_verifies():
    testbed = build_testbed(node_count=2, server_count=3,
                            select_policy="round-robin",
                            loss_probability=0.002,
                            image=_small_image())
    cluster = Cluster(testbed)

    def scenario():
        yield from cluster.deploy_all("bmcast", policy=FULL_SPEED)
        yield from cluster.wait_deployment_complete(settle_seconds=1.0)

    testbed.env.run(until=testbed.env.process(scenario()))
    assert cluster.verify_all_deployed()
    for instance in cluster.instances:
        load = instance.platform.router.stats()["replica_load"]
        # Round-robin: every replica took a share of this node's fetches.
        assert set(load) == set(testbed.server_ports)
        assert all(count > 0 for count in load.values())


def test_p2p_deployment_second_node_hits_peers():
    testbed = build_testbed(node_count=2, server_count=1, p2p=True,
                            image=_small_image())
    cluster = Cluster(testbed)
    env = testbed.env

    def scenario():
        first = yield from cluster.deploy_all("bmcast",
                                              node_indexes=[0],
                                              policy=FULL_SPEED)
        yield first[0].platform.copier.done
        yield from cluster.deploy_all("bmcast", node_indexes=[1],
                                      policy=FULL_SPEED)
        yield from cluster.wait_deployment_complete(settle_seconds=1.0)

    env.run(until=env.process(scenario()))
    assert cluster.verify_all_deployed()
    second = cluster.instances[1].platform
    stats = second.router.stats()
    assert stats["peer_hits"] > 0
    # The seed node actually served chunks over its peer port.
    assert cluster.instances[0].platform.peer_service.chunks_served > 0
    assert "aoe-peer" in testbed.switch.bytes_by_protocol


def test_loss_seed_varies_loss_pattern():
    def retransmissions(seed: int) -> int:
        testbed = build_testbed(loss_probability=0.01, loss_seed=seed,
                                image=_small_image())
        cluster = Cluster(testbed)

        def scenario():
            yield from cluster.deploy_all("bmcast", policy=FULL_SPEED)
            yield from cluster.wait_deployment_complete(
                settle_seconds=1.0)

        testbed.env.run(until=testbed.env.process(scenario()))
        return cluster.instances[0].platform.initiator.retransmissions

    assert retransmissions(1) == retransmissions(1)  # deterministic
    counts = {retransmissions(seed) for seed in (1, 2, 3, 4)}
    assert len(counts) > 1  # the seed actually steers the loss stream
