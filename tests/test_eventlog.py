"""Tests for the structured event tracer."""

import pytest

from repro.cloud.provisioner import Provisioner
from repro.cloud.scenario import build_testbed
from repro.guest.osimage import OsImage
from repro.metrics.eventlog import NULL_LOG, EventLog, NullEventLog
from repro.sim import Environment
from repro.vmm.moderation import FULL_SPEED

MB = 2**20


def test_eventlog_records_and_counts():
    env = Environment()
    log = EventLog(env)
    log.log("redirect", "one", lba=5)
    log.log("redirect", "two")
    log.log("phase", "entered deployment")
    assert len(log) == 3
    assert log.counts["redirect"] == 2
    assert [record.message for record in log.by_category("phase")] \
        == ["entered deployment"]


def test_eventlog_capacity_bounds():
    env = Environment()
    log = EventLog(env, capacity=10)
    for index in range(25):
        log.log("x", f"m{index}")
    assert len(log) == 10
    assert log.records[0].message == "m15"
    assert log.counts["x"] == 25  # counters survive eviction


def test_eventlog_render_and_dump():
    env = Environment()
    log = EventLog(env)
    log.log("copy", "progress", filled=10, total=20)
    text = log.dump()
    assert "copy" in text
    assert "filled=10" in text
    assert "totals" in text


def test_null_log_is_inert():
    assert len(NULL_LOG) == 0
    NULL_LOG.log("anything", "goes")
    assert len(NULL_LOG) == 0
    assert NULL_LOG.tail() == []
    assert NULL_LOG.dump() == "(tracing disabled)"
    assert isinstance(NULL_LOG, NullEventLog)


def test_null_log_counts_cannot_leak_state():
    # The old class-level Counter let one caller's mutation show up in
    # every other NULL_LOG reader; counts is now an immutable view.
    assert NULL_LOG.counts["anything"] == 0
    with pytest.raises(TypeError):
        NULL_LOG.counts["redirect"] += 1
    with pytest.raises(TypeError):
        NULL_LOG.counts.update({"redirect": 1})
    with pytest.raises(TypeError):
        NULL_LOG.counts.clear()
    assert NULL_LOG.counts["anything"] == 0
    assert NullEventLog().counts is NULL_LOG.counts
    assert NULL_LOG.records == ()


def deploy(trace):
    image = OsImage(size_bytes=16 * MB, boot_read_bytes=1 * MB,
                    boot_think_seconds=0.2)
    testbed = build_testbed(image=image)
    provisioner = Provisioner(testbed)
    env = testbed.env

    def scenario():
        instance = yield from provisioner.deploy(
            "bmcast", skip_firmware=True, policy=FULL_SPEED, trace=trace)
        yield instance.platform.copier.done
        return instance

    instance = env.run(until=env.process(scenario()))
    env.run(until=env.now + 5.0)
    return instance.platform


def test_vmm_trace_captures_lifecycle():
    vmm = deploy(trace=True)
    tracer = vmm.tracer
    assert tracer.counts["redirect"] > 0
    assert tracer.counts["phase"] >= 4
    phases = [record.message for record in tracer.by_category("phase")]
    assert phases[0] == "entered initialization"
    assert phases[-1] == "entered baremetal"
    assert tracer.counts["copy"] >= 1


def test_vmm_trace_disabled_by_default():
    vmm = deploy(trace=False)
    assert isinstance(vmm.tracer, NullEventLog)
    assert len(vmm.tracer) == 0
