"""Tests for the fluid-flow fast path (repro.net.flow).

Three layers: the max-min solver in isolation (exact analytic
completion times), the switch-level byte accounting (fluid transfers
must account identically to the packet path they replace), and the
deployment-level contract — parity with packet mode, demotion under
fidelity-bearing dynamics, and byte-identical packet behavior when
fluid is off (replay digests).
"""

import pytest

from repro.analysis import check_replay, deployment_scenario
from repro.cloud import Cluster, build_testbed
from repro.guest.osimage import OsImage
from repro.net.flow import FlowNetwork, FluidState
from repro.sim import Environment
from repro.vmm.moderation import FULL_SPEED, ModerationPolicy

MB = 2**20

#: A 1 Gb/s link moves 125 bytes per microsecond; one "unit" payload
#: of 125_000_000 wire bytes takes exactly 1.0 simulated seconds.
RATE = 1e9
UNIT = 125_000_000


def _network(env) -> FlowNetwork:
    return FlowNetwork(env, RATE)


def _start(env, network, src, dst, wire_bytes=UNIT):
    """Spawn one fluid transfer; returns a dict updated on completion."""
    result = {}

    def flow():
        yield from network.transfer(src, dst, wire_bytes)
        result["finished_at"] = env.now

    env.process(flow(), name=f"flow-{src}-{dst}")
    return result


# -- solver ------------------------------------------------------------------


def test_single_flow_runs_at_line_rate():
    env = Environment()
    network = _network(env)
    result = _start(env, network, "a", "b")
    env.run_until_idle()
    assert result["finished_at"] == pytest.approx(1.0)
    assert network.flows_completed == 1
    assert network.active_flows == 0


def test_two_flows_share_a_tx_link_equally():
    env = Environment()
    network = _network(env)
    first = _start(env, network, "s", "c1")
    second = _start(env, network, "s", "c2")
    env.run_until_idle()
    # Both arrive at t=0, each gets half the tx link: both take 2x solo.
    assert first["finished_at"] == pytest.approx(2.0)
    assert second["finished_at"] == pytest.approx(2.0)


def test_water_filling_gives_unbottlenecked_flow_the_residual():
    env = Environment()
    network = _network(env)
    # Three flows out of s1 (its tx link is the bottleneck at 1/3
    # each); a fourth from s2 shares c3's rx link with the third flow
    # and water-fills to the 2/3 residual.
    shared = [_start(env, network, "s1", f"c{i}") for i in (1, 2, 3)]
    residual = _start(env, network, "s2", "c3")
    env.run_until_idle()
    # residual runs at 2/3 until done (t=1.5), then flow 3 still holds
    # only 1/3 (s1 stays the bottleneck) so all three finish at 3.0.
    assert residual["finished_at"] == pytest.approx(1.5)
    for entry in shared:
        assert entry["finished_at"] == pytest.approx(3.0)


def test_departure_repricing_speeds_up_survivors():
    env = Environment()
    network = _network(env)
    short = _start(env, network, "s", "c1", wire_bytes=UNIT // 2)
    long = _start(env, network, "s", "c2")
    env.run_until_idle()
    # Shared at 1/2 rate until the short flow drains (t=1.0), then the
    # survivor gets the whole link: 0.5 units left at full rate.
    assert short["finished_at"] == pytest.approx(1.0)
    assert long["finished_at"] == pytest.approx(1.5)


def test_solver_is_deterministic():
    def completion_times():
        env = Environment()
        network = _network(env)
        results = [
            _start(env, network, "s1", "c1"),
            _start(env, network, "s1", "c2", wire_bytes=UNIT // 4),
            _start(env, network, "s2", "c2", wire_bytes=UNIT // 2),
        ]
        env.run_until_idle()
        return [entry["finished_at"] for entry in results]

    assert completion_times() == completion_times()


def test_packet_debt_postpones_completion():
    env = Environment()
    network = _network(env)
    result = _start(env, network, "s", "c")
    env.run(until=env.timeout(0.5))
    # Mid-flight, bill half a unit of packet cross-traffic to the tx
    # link: the flow regains those bytes and finishes late by exactly
    # the frame's wire time (the lazy debt reschedule).
    network.note_packet_bytes("s", True, UNIT // 2)
    env.run_until_idle()
    assert result["finished_at"] == pytest.approx(1.5)


def test_link_occupancy_counts_track_flows():
    env = Environment()
    network = _network(env)
    _start(env, network, "s", "c1")
    _start(env, network, "s", "c2")
    env.run(until=env.timeout(0.1))
    assert network.tx_flows("s") == 2
    assert network.rx_flows("c1") == 1
    assert network.rx_flows("c2") == 1
    assert network.tx_flows("c1") == 0
    env.run_until_idle()
    assert network.tx_flows("s") == 0


# -- switch accounting -------------------------------------------------------


def test_fluid_transfer_accounts_like_bulk_transfer():
    from repro.net.nic import Nic

    def accounting(fluid: bool):
        from repro.net.link import EthernetSwitch
        env = Environment()
        switch = EthernetSwitch(env)
        sender = Nic(env, switch, "src")
        receiver = Nic(env, switch, "dst")
        payload_bytes = 4 * MB
        method = switch.fluid_transfer if fluid else switch.bulk_transfer

        def scenario():
            yield from method("src", "dst", b"", payload_bytes, 8192,
                              protocol="aoe")

        env.run(until=env.process(scenario()))
        delivered = receiver.rx_ring.items
        return (switch.frames_forwarded, switch.bytes_forwarded,
                dict(switch.bytes_by_protocol), len(delivered), env.now)

    packet = accounting(fluid=False)
    fluid = accounting(fluid=True)
    # Identical frame/byte/protocol accounting and one delivered frame.
    assert fluid[:4] == packet[:4]
    # Same wire time, minus the one-chunk slack the packet path spends
    # pipelining its final chunk across the receive port.
    from repro.net.link import BULK_CHUNK_BYTES
    chunk_seconds = BULK_CHUNK_BYTES * 8.0 / 1e9
    assert fluid[4] == pytest.approx(packet[4], abs=1.5 * chunk_seconds)


# -- deployment parity -------------------------------------------------------


def _image(size_mb: int = 64) -> OsImage:
    return OsImage(size_bytes=size_mb * MB, boot_read_bytes=2 * MB,
                   boot_think_seconds=0.5)


def _deploy(fluid: bool, node_count: int = 2, **options):
    env = Environment()
    testbed = build_testbed(node_count=node_count, server_count=2,
                            image=_image(), env=env)
    cluster = Cluster(testbed)

    def scenario():
        yield from cluster.deploy_all("bmcast", policy=FULL_SPEED,
                                      fluid=fluid, initial_rto=2.0,
                                      coalesce_blocks=32,
                                      poll_interval=20e-3, **options)
        yield from cluster.wait_deployment_complete(settle_seconds=1.0)

    env.run(until=env.process(scenario()))
    return env, cluster


def test_fluid_deployment_matches_packet_figures():
    packet_env, packet = _deploy(fluid=False)
    fluid_env, fluid = _deploy(fluid=True)
    assert fluid.verify_all_deployed()
    for before, after in zip(packet.instances, fluid.instances):
        assert after.platform.fluid.describe() == "active"
        ready = (after.timeline.total - before.timeline.total) \
            / before.timeline.total
        assert abs(ready) <= 0.05, f"time-to-ready diverged {ready:+.2%}"
        packet_copy = before.platform.copier.finished_at \
            - before.platform.copier.started_at
        fluid_copy = after.platform.copier.finished_at \
            - after.platform.copier.started_at
        complete = (fluid_copy - packet_copy) / packet_copy
        assert abs(complete) <= 0.05, \
            f"time-to-complete diverged {complete:+.2%}"
    # The entire point: the same deployment in far fewer events.  At
    # this 2-node scale the fixed per-node boot/AHCI/poll events floor
    # both runs, so the ratio is modest; bench_fleet.py asserts the
    # >20x reduction at fleet scale.
    assert fluid_env.events_processed < packet_env.events_processed / 1.5


def test_fluid_metrics_absent_in_packet_mode():
    packet_env, packet = _deploy(fluid=False)
    switch = packet.testbed.switch
    # Packet-only runs never construct the solver (lazy attach).
    assert switch._flow_network is None


# -- demotion ----------------------------------------------------------------


def _deploy_with(node_count=1, deploy_options=None, **testbed_kwargs):
    env = Environment()
    testbed = build_testbed(node_count=node_count, image=_image(32),
                            env=env, **testbed_kwargs)
    cluster = Cluster(testbed)

    def scenario():
        yield from cluster.deploy_all("bmcast", fluid=True,
                                      **(deploy_options or {}))
        yield from cluster.wait_deployment_complete(settle_seconds=1.0)

    env.run(until=env.process(scenario()))
    return cluster


def test_moderation_demotes_fluid():
    paced = ModerationPolicy(guest_io_threshold=float("inf"),
                             write_interval=0.05, suspend_interval=0.0)
    cluster = _deploy_with(deploy_options={"policy": paced,
                                           "initial_rto": 2.0})
    assert cluster.instances[0].platform.fluid.describe() \
        == "demoted(moderation)"


def test_loss_injection_demotes_fluid():
    cluster = _deploy_with(loss_probability=0.01,
                           deploy_options={"policy": FULL_SPEED})
    assert cluster.instances[0].platform.fluid.describe() \
        == "demoted(loss-injection)"


def test_peer_gossip_demotes_fluid():
    cluster = _deploy_with(p2p=True,
                           deploy_options={"policy": FULL_SPEED,
                                           "initial_rto": 2.0})
    assert cluster.instances[0].platform.fluid.describe() \
        == "demoted(peer-gossip)"


def test_sanitizers_demote_fluid():
    from repro.analysis import SanitizerSuite
    env = Environment()
    testbed = build_testbed(node_count=1, image=_image(32), env=env)
    suite = SanitizerSuite(env)
    cluster = Cluster(testbed)

    def scenario():
        yield from cluster.deploy_all("bmcast", policy=FULL_SPEED,
                                      fluid=True, initial_rto=2.0,
                                      sanitizers=suite)
        yield from cluster.wait_deployment_complete(settle_seconds=1.0)

    env.run(until=env.process(scenario()))
    assert cluster.instances[0].platform.fluid.describe() \
        == "demoted(sanitizers)"
    suite.assert_clean()


def test_fluid_fetches_bypass_rto_machinery():
    # A fluid flow routinely outlives the bulk RTO (it is priced
    # analytically and cannot lose frames), so fluid transactions must
    # never retransmit even with the protocol's 50 ms cold-start RTO —
    # while the same deployment in packet mode storms.
    fluid_cluster = _deploy_with(deploy_options={"policy": FULL_SPEED,
                                                 "coalesce_blocks": 32})
    platform = fluid_cluster.instances[0].platform
    assert platform.fluid.describe() == "active"
    assert platform.initiator.retransmissions == 0
    assert fluid_cluster.verify_all_deployed()


def test_runtime_retransmission_demotes_mid_deployment():
    # Runtime demotion: the initiator observer flips the deployment
    # back to packet mode the moment any transaction retransmits, and
    # every subsequent copier fetch takes the exact per-packet path.
    env = Environment()
    testbed = build_testbed(node_count=1, image=_image(), env=env)
    cluster = Cluster(testbed)

    def deploy():
        yield from cluster.deploy_all("bmcast", policy=FULL_SPEED,
                                      fluid=True, initial_rto=2.0,
                                      coalesce_blocks=8)

    env.run(until=env.process(deploy()))
    platform = cluster.instances[0].platform
    assert platform.fluid.describe() == "active"
    flows_before = testbed.switch.flow_network.flows_started
    # What the initiator emits on an RTO-driven re-send.
    platform._fluid_observer("send", retransmit=True, retries=1)
    assert platform.fluid.describe() == "demoted(retransmission)"

    def finish():
        yield from cluster.wait_deployment_complete(settle_seconds=1.0)

    env.run(until=env.process(finish()))
    assert cluster.verify_all_deployed()
    # No new analytic flows started after the demotion.
    assert testbed.switch.flow_network.flows_started == flows_before


def test_fluid_state_first_demotion_wins():
    state = FluidState(requested=True)
    assert state.engage()
    state.demote("nak")
    state.demote("timeout")
    assert state.describe() == "demoted(nak)"
    assert not state.engage()  # demotion is sticky
    unrequested = FluidState(requested=False)
    assert not unrequested.engage()
    assert unrequested.describe() == "off"


# -- replay byte-identity ----------------------------------------------------


def test_fluid_off_is_byte_identical_to_no_kwarg():
    """`fluid=False` must not perturb the packet timeline at all."""
    plain = deployment_scenario(_image)
    explicit = deployment_scenario(_image,
                                   deploy_options={"fluid": False})
    baseline = check_replay(plain)
    toggled = check_replay(explicit)
    assert not baseline.divergent and not toggled.divergent
    assert baseline.digests[0] == toggled.digests[0]


def test_zero_stagger_is_byte_identical_to_no_kwarg():
    plain = deployment_scenario(_image)
    staggered = deployment_scenario(
        _image, deploy_options={"stagger_seconds": 0.0})
    assert check_replay(plain).digests[0] \
        == check_replay(staggered).digests[0]


def test_statically_demoted_fluid_matches_packet_digest():
    """A demoted-at-arm-time fluid run IS the packet run, bit for bit."""
    paced = ModerationPolicy(guest_io_threshold=float("inf"),
                             write_interval=0.05, suspend_interval=0.0)
    packet = deployment_scenario(_image, policy=paced)
    demoted = deployment_scenario(_image, policy=paced,
                                  deploy_options={"fluid": True})
    assert check_replay(packet).digests[0] \
        == check_replay(demoted).digests[0]
