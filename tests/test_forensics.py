"""Tests for the deployment-forensics layer (causal tracer, profiler,
provenance, trace export) and its CLI surface."""

import json

import pytest

from repro.analysis import check_replay, deployment_scenario
from repro.cli import main
from repro.cloud.provisioner import Provisioner
from repro.cloud.scenario import build_testbed
from repro.guest.osimage import OsImage
from repro.obs import (NULL_CAUSAL, NULL_PROFILER, NULL_PROVENANCE,
                       NULL_TELEMETRY, CausalTracer, SimProfiler,
                       Telemetry, chrome_trace_document, classify_actor,
                       folded_stacks, format_profile, profile_report)
from repro.sim import Environment, Timeout


def small_image(size_mb=128):
    return OsImage(size_bytes=size_mb * 2**20,
                   boot_read_bytes=16 * 2**20)


def _forensic_deploy(size_mb=128):
    env = Environment()
    telemetry = Telemetry(env, forensics=True)
    testbed = build_testbed(image=small_image(size_mb), env=env,
                            telemetry=telemetry)
    provisioner = Provisioner(testbed)
    instance = env.run(until=env.process(
        provisioner.deploy("bmcast", skip_firmware=True)))
    env.run(until=instance.platform.copier.done)
    env.run(until=env.now + 10.0)
    return env, telemetry, instance


@pytest.fixture(scope="module")
def forensic_run():
    return _forensic_deploy()


# -- causal tracer ----------------------------------------------------------


def test_causal_chain_follows_cause_edges():
    env = Environment()
    tracer = CausalTracer(env).attach()

    def child():
        yield Timeout(env, 1.0)
        tracer.mark("child-done")

    def parent():
        yield Timeout(env, 1.0)
        yield env.process(child(), name="child")

    env.run(until=env.process(parent(), name="parent"))
    anchor_index, anchor_at = tracer.marks["child-done"]
    assert anchor_at == pytest.approx(2.0)
    chain = tracer.chain_from(anchor_index)
    # Every hop fires no later than the one after it.
    times = [tracer.fire_at[node] for node in chain]
    assert times == sorted(times)
    # The chain reaches back to the start of the run.
    assert times[0] <= 1.0 and times[-1] == pytest.approx(2.0)


def test_latency_budget_partitions_anchor_time():
    env, telemetry, _ = _forensic_deploy()
    budget = telemetry.causal.latency_budget("devirtualize")
    assert budget["anchor"] == "devirtualize"
    assert budget["anchor_seconds"] > 0
    total_share = sum(entry["share"] for entry in budget["budget"])
    # The per-component waits partition the whole interval: the issue's
    # acceptance bar is >= 95%, the construction gives exactly 100%.
    assert total_share >= 0.95
    total_seconds = sum(entry["seconds"] for entry in budget["budget"])
    assert total_seconds == pytest.approx(budget["anchor_seconds"])


def test_component_times_partition_total_sim_time(forensic_run):
    env, telemetry, _ = forensic_run
    shares = telemetry.causal.component_times(until=env.now)
    assert sum(shares.values()) == pytest.approx(env.now, abs=1e-9)
    # The copy dominates a bmcast deployment; the copier must show up.
    assert shares.get("copier", 0.0) > 0.0


def test_classify_actor_table():
    assert classify_actor("copier-node0") == "copier"
    assert classify_actor("aoe-dispatch-3") == "aoe-client"
    assert classify_actor("aoe-serve-server-1") == "aoe-server"
    assert classify_actor("megaraid-exec") == "disk"
    assert classify_actor("node0-eth1-tx") == "nic"
    assert classify_actor("whatever") == "other"


def test_deploy_records_both_marks(forensic_run):
    _, telemetry, _ = forensic_run
    assert "devirtualize" in telemetry.causal.marks
    assert "deploy-complete" in telemetry.causal.marks


# -- profiler ---------------------------------------------------------------


def test_profiler_nested_tracking_self_time():
    env = Environment()
    profiler = SimProfiler(env)

    def work():
        with profiler.track("outer", "all"):
            yield Timeout(env, 1.0)
            with profiler.track("inner", "sub"):
                yield Timeout(env, 3.0)
            yield Timeout(env, 1.0)

    env.run(until=env.process(work(), name="w"))
    assert profiler.component_self["outer"] == pytest.approx(2.0)
    assert profiler.component_self["inner"] == pytest.approx(3.0)
    assert profiler.folded["outer:all"] == pytest.approx(2.0)
    assert profiler.folded["outer:all;inner:sub"] == pytest.approx(3.0)


def test_profiler_tracks_deploy_components(forensic_run):
    _, telemetry, _ = forensic_run
    tracked = telemetry.profiler.component_self
    for component in ("vmm", "guest", "copier", "mediator",
                      "aoe-client", "aoe-server", "disk"):
        assert tracked.get(component, 0.0) > 0.0, component


# -- provenance -------------------------------------------------------------


def test_provenance_samples_block_lifecycle(forensic_run):
    _, telemetry, _ = forensic_run
    provenance = telemetry.provenance
    assert provenance.timelines, "no blocks sampled"
    assert provenance.sources().get("origin", 0) > 0
    # Every sampled block respects the stride.
    for (node, block) in provenance.timelines:
        assert provenance.sampled(block)
        assert block % provenance.stride == 0
    # A deployed block's timeline ends in a commit or guest fill.
    events = {event for records in provenance.timelines.values()
              for (_, event, _) in records}
    assert "commit" in events or "guest-fill" in events


# -- trace export -----------------------------------------------------------


def test_chrome_trace_document_is_valid(forensic_run, tmp_path):
    _, telemetry, _ = forensic_run
    document = chrome_trace_document(telemetry)
    events = document["traceEvents"]
    assert events
    phases = {event["ph"] for event in events}
    assert phases <= {"X", "M", "i"}
    for event in events:
        assert "pid" in event and "name" in event
        if event["ph"] == "X":
            assert event["ts"] >= 0 and event["dur"] >= 0
    # Round-trips through JSON.
    json.loads(json.dumps(document))
    # Mark instants include the devirtualize anchor.
    marks = [event for event in events if event["ph"] == "i"]
    assert any(event["name"] == "devirtualize" for event in marks)


def test_folded_stacks_format(forensic_run):
    _, telemetry, _ = forensic_run
    text = folded_stacks(telemetry)
    assert text
    for line in text.splitlines():
        stack, _, weight = line.rpartition(" ")
        assert stack and int(weight) >= 1


def test_profile_report_attribution(forensic_run):
    env, telemetry, _ = forensic_run
    report = profile_report(telemetry)
    assert report["total_sim_seconds"] == pytest.approx(env.now)
    assert sum(report["components"].values()) \
        == pytest.approx(env.now, abs=1e-9)
    covered = sum(entry["share"] for entry
                  in report["critical_path"]["budget"])
    assert covered >= 0.95
    text = format_profile(report)
    assert "Critical path" in text and "copier" in text
    json.dumps(report)


# -- zero-cost null path ----------------------------------------------------


def test_null_telemetry_exposes_null_forensics():
    assert NULL_TELEMETRY.forensics is False
    assert NULL_TELEMETRY.profiler is NULL_PROFILER
    assert NULL_TELEMETRY.causal is NULL_CAUSAL
    assert NULL_TELEMETRY.provenance is NULL_PROVENANCE
    with NULL_PROFILER.track("x", "y"):
        pass
    NULL_CAUSAL.mark("anything")
    NULL_PROVENANCE.note_fetch("n", 0, 8, "server", "origin", 0.0)
    assert NULL_CAUSAL.marks == {}


def test_plain_telemetry_keeps_forensics_off():
    telemetry = Telemetry(Environment())
    assert telemetry.forensics is False
    assert telemetry.profiler is NULL_PROFILER


# -- non-perturbation (the replay-divergence proof) -------------------------


def test_forensics_do_not_perturb_the_timeline():
    def factory(env):
        return Telemetry(env, forensics=True)

    digests = []
    for telemetry_factory in (None, factory):
        scenario = deployment_scenario(
            lambda: small_image(64), wait=True,
            telemetry_factory=telemetry_factory)
        report = check_replay(scenario, runs=2)
        assert not report.divergent
        digests.append(report.digests[0])
    # Identical digests across traced and untraced runs: arming the
    # full forensics layer changes nothing about the event stream.
    assert digests[0] == digests[1]


# -- CLI --------------------------------------------------------------------


def test_cli_deploy_trace_out(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main(["deploy", "--image-gb", "0.0625", "--wait",
                 "--trace-out", str(out)]) == 0
    assert "chrome trace written" in capsys.readouterr().out
    document = json.loads(out.read_text())
    assert document["traceEvents"]


def test_cli_trace_subcommand(tmp_path, capsys):
    out = tmp_path / "trace.json"
    folded = tmp_path / "folded.txt"
    assert main(["trace", "--image-gb", "0.0625", "--out", str(out),
                 "--folded-out", str(folded)]) == 0
    output = capsys.readouterr().out
    assert "chrome trace written" in output
    assert "folded stacks written" in output
    assert json.loads(out.read_text())["traceEvents"]
    assert folded.read_text().strip()


def test_cli_profile_subcommand(tmp_path, capsys):
    out = tmp_path / "profile.json"
    assert main(["profile", "--image-gb", "0.0625",
                 "--out", str(out)]) == 0
    output = capsys.readouterr().out
    assert "Critical path" in output
    assert "Component wall partition" in output
    report = json.loads(out.read_text())
    assert report["critical_path"]["anchor"] == "devirtualize"


def test_cli_compare_trace_out(tmp_path, capsys):
    out = tmp_path / "compare.json"
    assert main(["compare", "--image-gb", "0.0625",
                 "--trace-out", str(out)]) == 0
    capsys.readouterr()
    document = json.loads(out.read_text())
    pids = {event["pid"] for event in document["traceEvents"]}
    assert len(pids) > 1  # one pid per method
