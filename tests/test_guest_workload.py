"""Tests for the generic guest disk workloads."""

import pytest

from repro import params
from repro.cloud.provisioner import Provisioner
from repro.cloud.scenario import build_testbed
from repro.guest.osimage import OsImage
from repro.guest.workload import (
    MixedWorkload,
    RandomReader,
    SequentialReader,
    SequentialWriter,
)

MB = 2**20


def deploy(method="baremetal"):
    image = OsImage(size_bytes=64 * MB, boot_read_bytes=2 * MB,
                    boot_think_seconds=0.5)
    testbed = build_testbed(image=image)
    provisioner = Provisioner(testbed)
    env = testbed.env
    instance = env.run(until=env.process(
        provisioner.deploy(method, skip_firmware=True)))
    return testbed, instance


def run(env, generator):
    return env.run(until=env.process(generator))


def test_sequential_reader_hits_disk_rate():
    testbed, instance = deploy()
    reader = SequentialReader(instance, lba=0, total_bytes=32 * MB)
    rate = run(testbed.env, reader.run())
    assert rate == pytest.approx(params.DISK_READ_BW, rel=0.05)
    assert reader.requests == 32
    assert reader.bytes_moved == 32 * MB


def test_sequential_writer_hits_disk_rate():
    testbed, instance = deploy()
    writer = SequentialWriter(instance, lba=0, total_bytes=32 * MB)
    rate = run(testbed.env, writer.run())
    assert rate == pytest.approx(params.DISK_WRITE_BW, rel=0.05)
    # The data really landed.
    assert testbed.node.disk.contents.get(100) is not None


def test_random_reader_latency_rotational():
    testbed, instance = deploy()
    span = 32 * MB // params.SECTOR_BYTES
    reader = RandomReader(instance, lba=0, span_sectors=span, requests=50)
    latency = run(testbed.env, reader.run())
    # Random 4-KB reads on a 7200-rpm disk: a few ms.
    assert 1e-3 < latency < 12e-3
    assert len(reader.latency) == 50


def test_mixed_workload_rate_and_mix():
    testbed, instance = deploy()
    span = 32 * MB // params.SECTOR_BYTES
    workload = MixedWorkload(instance, lba=0, span_sectors=span,
                             rate=40.0, read_fraction=0.75)
    run(testbed.env, workload.run(5.0))
    total = workload.reads + workload.writes
    assert total == pytest.approx(40 * 5, rel=0.15)
    assert workload.reads / total == pytest.approx(0.75, abs=0.12)
    assert workload.throughput > 0


def test_mixed_workload_validation():
    testbed, instance = deploy()
    with pytest.raises(ValueError):
        MixedWorkload(instance, 0, 100, read_fraction=1.5)
    with pytest.raises(ValueError):
        MixedWorkload(instance, 0, 100, rate=0)


def test_throughput_before_run_rejected():
    testbed, instance = deploy()
    reader = SequentialReader(instance, 0, MB)
    with pytest.raises(ValueError):
        _ = reader.throughput


def test_workload_on_deploying_instance():
    """Workloads run against a BMcast instance mid-deployment too."""
    testbed, instance = deploy("bmcast")
    span = 16 * MB // params.SECTOR_BYTES
    workload = MixedWorkload(instance, lba=0, span_sectors=span,
                             rate=30.0, read_fraction=0.5)
    run(testbed.env, workload.run(3.0))
    assert workload.reads + workload.writes > 0
    # Reads during deployment still returned (redirected or local).
    assert workload.mean_latency > 0
