"""Tests for CPU VMX mode transitions, exits, and timers."""

import pytest

from repro.hw.cpu import Cpu, CpuError, ExitReason, VmxMode
from repro.sim import Environment


def make_cpu(**kwargs):
    env = Environment()
    return env, Cpu(env, 0, **kwargs)


def test_initial_mode_is_off():
    _, cpu = make_cpu()
    assert cpu.mode is VmxMode.OFF


def test_vmxon_vmenter_cycle():
    _, cpu = make_cpu()
    cpu.vmxon()
    assert cpu.mode is VmxMode.ROOT
    cpu.vmenter()
    assert cpu.mode is VmxMode.NON_ROOT


def test_vmexit_counts_and_charges():
    _, cpu = make_cpu()
    cpu.vmxon()
    cpu.vmenter()
    cost = cpu.vmexit(ExitReason.PIO)
    assert cost > 0
    assert cpu.mode is VmxMode.ROOT
    assert cpu.exit_counts[ExitReason.PIO] == 1
    assert cpu.exit_seconds == cost


def test_vmexit_from_root_rejected():
    _, cpu = make_cpu()
    cpu.vmxon()
    with pytest.raises(CpuError):
        cpu.vmexit(ExitReason.PIO)


def test_vmxon_twice_rejected():
    _, cpu = make_cpu()
    cpu.vmxon()
    with pytest.raises(CpuError):
        cpu.vmxon()


def test_vmxoff_from_root():
    _, cpu = make_cpu()
    cpu.vmxon()
    cpu.vmxoff()
    assert cpu.mode is VmxMode.OFF


def test_vmxoff_from_non_root_guest_trampoline():
    # Paper 4.3: VMXOFF can be executed from guest context via a
    # trampoline; the model allows turning off from non-root.
    _, cpu = make_cpu()
    cpu.vmxon()
    cpu.vmenter()
    cpu.vmxoff()
    assert cpu.mode is VmxMode.OFF


def test_vmxoff_when_off_rejected():
    _, cpu = make_cpu()
    with pytest.raises(CpuError):
        cpu.vmxoff()


def test_exit_rate():
    _, cpu = make_cpu()
    cpu.vmxon()
    cpu.vmenter()
    for _ in range(10):
        cpu.vmexit(ExitReason.CPUID)
        cpu.vmresume()
    assert cpu.exit_rate(2.0) == 5.0
    assert cpu.exit_rate(0.0) == 0.0


def test_preemption_timer_fires_periodically():
    env, cpu = make_cpu()
    cpu.vmxon()
    cpu.vmenter()
    fired = []

    def poll():
        fired.append(env.now)
        yield env.timeout(0)

    cpu.arm_preemption_timer(1e-3, poll)
    env.run(until=0.0105)
    assert len(fired) == 10
    assert cpu.exit_counts[ExitReason.PREEMPTION_TIMER] == 10


def test_preemption_timer_skips_when_not_in_guest():
    env, cpu = make_cpu()
    cpu.vmxon()  # root mode: guest not running
    fired = []

    def poll():
        fired.append(env.now)
        yield env.timeout(0)

    cpu.arm_preemption_timer(1e-3, poll)
    env.run(until=0.01)
    assert fired == []
    assert cpu.total_exits == 0


def test_preemption_timer_unavailable_raises():
    env, cpu = make_cpu(has_preemption_timer=False)
    with pytest.raises(CpuError):
        cpu.arm_preemption_timer(1e-3, lambda: iter(()))


def test_soft_timer_fallback_fires_with_jitter():
    env, cpu = make_cpu(has_preemption_timer=False)
    cpu.vmxon()
    cpu.vmenter()
    fired = []

    def poll():
        fired.append(env.now)
        yield env.timeout(0)

    cpu.arm_soft_timer(1e-3, poll)
    env.run(until=0.02)
    assert len(fired) > 5
    # Jitter means intervals are not all identical.
    gaps = {round(b - a, 7) for a, b in zip(fired, fired[1:])}
    assert len(gaps) > 1
    assert cpu.exit_counts[ExitReason.EXTERNAL_INTERRUPT] == len(fired)


def test_cancel_preemption_timer_stops_firing():
    env, cpu = make_cpu()
    cpu.vmxon()
    cpu.vmenter()
    fired = []

    def poll():
        fired.append(env.now)
        yield env.timeout(0)

    cpu.arm_preemption_timer(1e-3, poll)
    env.run(until=0.005)
    count = len(fired)
    cpu.cancel_preemption_timer()
    env.run(until=0.02)
    assert len(fired) == count


def test_vmxoff_disarms_timer():
    env, cpu = make_cpu()
    cpu.vmxon()
    cpu.vmenter()
    fired = []

    def poll():
        fired.append(env.now)
        yield env.timeout(0)

    cpu.arm_preemption_timer(1e-3, poll)
    env.run(until=0.003)
    cpu.vmxoff()
    env.run(until=0.02)
    assert len(fired) <= 3
