"""Tests for the I/O bus and the VMM interception layer."""

import pytest

from repro.hw.cpu import Cpu
from repro.hw.iobus import BusError, IoBus
from repro.sim import Environment


class FakeDevice:
    """Register file recording accesses."""

    def __init__(self):
        self.registers = {}
        self.writes = []

    def pio_read(self, port):
        return self.registers.get(port, 0)

    def pio_write(self, port, value):
        self.registers[port] = value
        self.writes.append((port, value))

    mmio_read = pio_read
    mmio_write = pio_write


def setup_bus():
    env = Environment()
    bus = IoBus(env)
    device = FakeDevice()
    bus.register_pio(range(0x1F0, 0x1F8), device)
    bus.register_mmio(0xFEB00000, 0x1000, device)
    cpu = Cpu(env, 0)
    return env, bus, device, cpu


def run(env, generator):
    return env.run(until=env.process(generator))


def test_direct_pio_read_write():
    env, bus, device, cpu = setup_bus()

    def proc():
        yield from bus.pio_write(0x1F0, 0xAB, cpu=cpu)
        value = yield from bus.pio_read(0x1F0, cpu=cpu)
        return value

    assert run(env, proc()) == 0xAB
    assert bus.direct_accesses == 2
    assert bus.intercepted_accesses == 0


def test_unmapped_port_raises():
    env, bus, device, cpu = setup_bus()

    def proc():
        yield from bus.pio_read(0x9999, cpu=cpu)

    with pytest.raises(BusError):
        run(env, proc())


def test_double_registration_rejected():
    env, bus, device, cpu = setup_bus()
    with pytest.raises(BusError):
        bus.register_pio([0x1F0], FakeDevice())


def test_overlapping_mmio_rejected():
    env, bus, device, cpu = setup_bus()
    with pytest.raises(BusError):
        bus.register_mmio(0xFEB00800, 0x1000, FakeDevice())


def test_intercept_fires_only_in_guest_mode():
    env, bus, device, cpu = setup_bus()
    seen = []

    def hook(access):
        seen.append((access.is_write, access.address, access.value))
        yield env.timeout(0)

    bus.intercept_pio([0x1F7], hook)

    def proc():
        # Not in guest mode: no interception.
        yield from bus.pio_write(0x1F7, 1, cpu=cpu)
        cpu.vmxon()
        cpu.vmenter()
        # Guest mode: intercepted.
        yield from bus.pio_write(0x1F7, 2, cpu=cpu)

    run(env, proc())
    assert seen == [(True, 0x1F7, 2)]
    assert bus.intercepted_accesses == 1
    assert cpu.total_exits == 1


def test_intercept_costs_time():
    env, bus, device, cpu = setup_bus()

    def hook(access):
        yield env.timeout(0)

    bus.intercept_pio([0x1F7], hook)
    cpu.vmxon()
    cpu.vmenter()

    def proc():
        yield from bus.pio_write(0x1F7, 1, cpu=cpu)

    run(env, proc())
    assert env.now > 0


def test_intercept_write_forwarded_by_default():
    env, bus, device, cpu = setup_bus()

    def hook(access):
        yield env.timeout(0)

    bus.intercept_pio([0x1F0], hook)
    cpu.vmxon()
    cpu.vmenter()

    def proc():
        yield from bus.pio_write(0x1F0, 0x55, cpu=cpu)

    run(env, proc())
    assert device.registers[0x1F0] == 0x55


def test_intercept_can_absorb_write():
    env, bus, device, cpu = setup_bus()

    def hook(access):
        access.absorb = True
        yield env.timeout(0)

    bus.intercept_pio([0x1F0], hook)
    cpu.vmxon()
    cpu.vmenter()

    def proc():
        yield from bus.pio_write(0x1F0, 0x55, cpu=cpu)

    run(env, proc())
    assert 0x1F0 not in device.registers


def test_intercept_can_emulate_read_reply():
    env, bus, device, cpu = setup_bus()
    device.registers[0x1F7] = 0x50  # real status

    def hook(access):
        access.reply = 0x80  # emulate BSY
        yield env.timeout(0)

    bus.intercept_pio([0x1F7], hook)
    cpu.vmxon()
    cpu.vmenter()

    def proc():
        value = yield from bus.pio_read(0x1F7, cpu=cpu)
        return value

    assert run(env, proc()) == 0x80


def test_mmio_interception():
    env, bus, device, cpu = setup_bus()
    seen = []

    def hook(access):
        seen.append(access.address)
        yield env.timeout(0)

    bus.intercept_mmio(0xFEB00000, 0x1000, hook)
    cpu.vmxon()
    cpu.vmenter()

    def proc():
        yield from bus.mmio_write(0xFEB00010, 7, cpu=cpu)
        value = yield from bus.mmio_read(0xFEB00010, cpu=cpu)
        return value

    assert run(env, proc()) == 7
    assert seen == [0xFEB00010, 0xFEB00010]


def test_clear_all_intercepts_devirtualizes_bus():
    env, bus, device, cpu = setup_bus()

    def hook(access):
        yield env.timeout(0)

    bus.intercept_pio([0x1F0], hook)
    bus.intercept_mmio(0xFEB00000, 0x1000, hook)
    assert bus.has_intercepts
    bus.clear_all_intercepts()
    assert not bus.has_intercepts
    cpu.vmxon()
    cpu.vmenter()

    def proc():
        yield from bus.pio_write(0x1F0, 1, cpu=cpu)

    run(env, proc())
    assert bus.intercepted_accesses == 0
    assert cpu.total_exits == 0


def test_direct_access_is_free():
    env, bus, device, cpu = setup_bus()

    def proc():
        for _ in range(100):
            yield from bus.pio_write(0x1F0, 1, cpu=cpu)

    run(env, proc())
    assert env.now == 0.0
