"""Tests for the physical memory map (E820) model."""

import pytest

from repro.hw.memory import MemoryMapError, PhysicalMemory


GB = 2**30
MB = 2**20


def test_starts_fully_usable():
    memory = PhysicalMemory(4 * GB)
    assert memory.usable_bytes == 4 * GB
    assert memory.reserved_bytes == 0
    assert len(memory.regions) == 1


def test_size_must_be_positive():
    with pytest.raises(ValueError):
        PhysicalMemory(0)


def test_reserve_carves_hole():
    memory = PhysicalMemory(4 * GB)
    memory.reserve(1 * GB, 128 * MB)
    assert memory.reserved_bytes == 128 * MB
    assert memory.usable_bytes == 4 * GB - 128 * MB
    kinds = [r.kind for r in memory.regions]
    assert kinds == ["usable", "reserved", "usable"]


def test_reserve_at_start_of_memory():
    memory = PhysicalMemory(1 * GB)
    memory.reserve(0, 64 * MB)
    assert memory.regions[0].kind == "reserved"
    assert memory.regions[0].start == 0


def test_reserve_outside_memory_rejected():
    memory = PhysicalMemory(1 * GB)
    with pytest.raises(MemoryMapError):
        memory.reserve(1 * GB - 1 * MB, 2 * MB)


def test_double_reserve_same_region_rejected():
    memory = PhysicalMemory(1 * GB)
    memory.reserve(0, 64 * MB)
    with pytest.raises(MemoryMapError):
        memory.reserve(32 * MB, 64 * MB)


def test_kind_at():
    memory = PhysicalMemory(1 * GB)
    memory.reserve(100 * MB, 10 * MB)
    assert memory.kind_at(0) == "usable"
    assert memory.kind_at(105 * MB) == "reserved"
    assert memory.kind_at(110 * MB) == "usable"


def test_kind_at_out_of_range():
    memory = PhysicalMemory(1 * GB)
    with pytest.raises(MemoryMapError):
        memory.kind_at(2 * GB)


def test_release_returns_region_and_coalesces():
    memory = PhysicalMemory(1 * GB)
    hole = memory.reserve(100 * MB, 10 * MB)
    memory.release(hole)
    assert memory.reserved_bytes == 0
    assert len(memory.regions) == 1


def test_release_unknown_region_rejected():
    memory = PhysicalMemory(1 * GB)
    memory.reserve(0, 1 * MB)
    other = PhysicalMemory(1 * GB)
    hole = other.reserve(0, 1 * MB)
    memory.release(hole)  # same value: dataclass equality makes this valid
    with pytest.raises(MemoryMapError):
        memory.release(hole)
