"""Tests for interrupts, PCI, MMU model, firmware, machine, platform."""

import pytest

from repro import params
from repro.hw.interrupts import InterruptController
from repro.hw.machine import Machine, MachineSpec
from repro.hw.memory import PhysicalMemory
from repro.hw.mmu import MemoryProfile, MmuFault, NestedPageTable
from repro.hw.pci import INVALID_VENDOR, PciBus, PciDevice
from repro.hw.platform import BAREMETAL, PlatformCondition
from repro.sim import Environment


# -- interrupts ---------------------------------------------------------------

def test_irq_delivered_to_waiter():
    env = Environment()
    intc = InterruptController(env)
    log = []

    def driver(env):
        line = yield intc.wait(14)
        log.append((env.now, line))

    env.process(driver(env))

    def device(env):
        yield env.timeout(1)
        intc.raise_irq(14)

    env.process(device(env))
    env.run()
    assert len(log) == 1
    assert log[0][1] == 14
    assert intc.delivered[14] == 1


def test_irq_pending_when_no_waiter():
    env = Environment()
    intc = InterruptController(env)
    intc.raise_irq(5)
    assert intc.is_pending(5)
    log = []

    def driver(env):
        line = yield intc.wait(5)
        log.append(line)

    env.process(driver(env))
    env.run()
    assert log == [5]
    assert not intc.is_pending(5)


def test_masked_irq_suppressed_and_held_pending():
    env = Environment()
    intc = InterruptController(env)
    intc.mask(14)
    intc.raise_irq(14)
    assert intc.suppressed[14] == 1
    assert intc.is_pending(14)
    assert intc.delivered[14] == 0


def test_clear_pending_before_unmask_hides_vmm_interrupt():
    # The mediator's dance: mask, let the device interrupt for the VMM's
    # own request, ack the device, clear pending, unmask -> the guest
    # never sees it.
    env = Environment()
    intc = InterruptController(env)
    seen = []

    def driver(env):
        line = yield intc.wait(14)
        seen.append(line)

    env.process(driver(env))
    intc.mask(14)
    intc.raise_irq(14)       # VMM's interrupt, suppressed
    intc.clear_pending(14)
    intc.unmask(14)
    env.run(until=1.0)
    assert seen == []


def test_unmask_delivers_pending_to_waiter():
    env = Environment()
    intc = InterruptController(env)
    seen = []

    def driver(env):
        line = yield intc.wait(14)
        seen.append(line)

    env.process(driver(env))
    intc.mask(14)
    intc.raise_irq(14)
    intc.unmask(14)
    env.run()
    assert seen == [14]


def test_bad_line_rejected():
    env = Environment()
    intc = InterruptController(env, lines=4)
    with pytest.raises(ValueError):
        intc.raise_irq(99)


# -- PCI ------------------------------------------------------------------------

def make_pci():
    bus = PciBus()
    nic = PciDevice(vendor_id=0x8086, device_id=0x10D3,
                    class_code=0x020000, name="intel-pro1000")
    bus.attach(3, nic)
    return bus, nic


def test_pci_enumerate_and_read():
    bus, nic = make_pci()
    assert bus.read_vendor_id(3) == 0x8086
    assert bus.enumerate() == [(3, nic)]


def test_pci_hide_device():
    bus, nic = make_pci()
    bus.hide(3)
    assert bus.read_vendor_id(3) == INVALID_VENDOR
    assert bus.enumerate() == []
    assert bus.device_at(3) is None
    # Provider view still sees it.
    assert bus.all_slots() == [(3, nic)]
    bus.unhide(3)
    assert bus.read_vendor_id(3) == 0x8086


def test_pci_empty_slot_reads_invalid():
    bus, _ = make_pci()
    assert bus.read_vendor_id(9) == INVALID_VENDOR


def test_pci_double_attach_rejected():
    bus, nic = make_pci()
    with pytest.raises(ValueError):
        bus.attach(3, nic)


def test_pci_hide_empty_slot_rejected():
    bus, _ = make_pci()
    with pytest.raises(ValueError):
        bus.hide(9)


# -- MMU / nested paging ---------------------------------------------------------

def test_npt_trap_ranges_only_when_enabled():
    npt = NestedPageTable()
    trap = npt.add_trap_range(0xFEB00000, 0x1000, "ahci")
    assert npt.trap_for(0xFEB00010) is None  # disabled
    npt.enable()
    assert npt.trap_for(0xFEB00010) is trap
    assert npt.trap_for(0xFEC00000) is None


def test_npt_protection_enforced():
    npt = NestedPageTable()
    npt.protect(0x1000000, 0x100000, "vmm-memory")
    npt.enable()
    with pytest.raises(MmuFault):
        npt.check_guest_access(0x1000800)
    npt.check_guest_access(0x2000000)  # fine


def test_npt_disable_lifts_protection_and_flushes():
    npt = NestedPageTable()
    npt.protect(0x1000000, 0x100000)
    npt.enable()
    flushes = npt.tlb_flushes
    npt.disable()
    assert npt.tlb_flushes == flushes + 1
    npt.check_guest_access(0x1000800)  # no fault after de-virtualization


def test_memory_profile_slowdown():
    profile = MemoryProfile(tlb_stall_fraction=0.01)
    assert profile.slowdown(nested_paging=False) == 1.0
    slowdown = profile.slowdown(nested_paging=True)
    # 1% stall inflated by 5x misses * 2x walk = 10x -> +9%.
    assert slowdown == pytest.approx(1.09)


# -- platform condition ------------------------------------------------------------

def test_baremetal_condition_is_free():
    assert BAREMETAL.cpu_slowdown(0.01) == 1.0
    assert BAREMETAL.lhp_slowdown(24, 12) == 1.0
    assert BAREMETAL.memory_slowdown(16.0) == 1.0


def test_nested_paging_condition_slows_tlb_bound_work():
    condition = PlatformCondition(label="deploy", nested_paging=True)
    assert condition.cpu_slowdown(0.01) == pytest.approx(1.09)
    assert condition.cpu_slowdown(0.0) == 1.0


def test_vmm_cpu_fraction_reduces_capacity():
    condition = PlatformCondition(label="deploy", vmm_cpu_fraction=0.06)
    assert condition.cpu_slowdown() == pytest.approx(1 / 0.94)


def test_lhp_slowdown_grows_with_oversubscription():
    condition = PlatformCondition(label="kvm", lock_holder_preemption=True)
    low = condition.lhp_slowdown(2, 12)
    mid = condition.lhp_slowdown(12, 12)
    high = condition.lhp_slowdown(24, 12)
    assert low < mid < high
    assert high == pytest.approx(1.69, abs=0.02)  # paper Fig. 8: +68%


def test_memory_slowdown_scales_with_block_size():
    condition = PlatformCondition(label="kvm", memory_overhead=0.35)
    small = condition.memory_slowdown(1.0)
    large = condition.memory_slowdown(16.0)
    assert small < large
    assert large == pytest.approx(1.35, abs=0.01)


def test_condition_with_override():
    changed = BAREMETAL.with_(label="x", cpu_overhead=0.1)
    assert changed.label == "x"
    assert BAREMETAL.cpu_overhead == 0.0


# -- machine assembly ------------------------------------------------------------------

def test_machine_defaults():
    env = Environment()
    machine = Machine(env)
    assert len(machine.cpus) == params.CPU_CORES
    assert machine.memory.size_bytes == params.MEMORY_BYTES
    assert machine.condition is BAREMETAL


def test_machine_condition_log():
    env = Environment()
    machine = Machine(env)

    def proc(env):
        yield env.timeout(10)
        machine.set_condition(BAREMETAL.with_(label="deploy"))
        yield env.timeout(10)
        machine.set_condition(BAREMETAL.with_(label="devirt"))

    env.process(proc(env))
    env.run()
    assert machine.condition_log.at(5).label == "baremetal"
    assert machine.condition_log.at(15).label == "deploy"
    assert machine.condition_log.at(25).label == "devirt"


def test_machine_power_on_takes_firmware_time():
    env = Environment()
    machine = Machine(env, MachineSpec(firmware_init_seconds=133.0))

    def proc(env):
        yield from machine.power_on()

    env.run(until=env.process(proc(env)))
    assert env.now == pytest.approx(133.0)
    assert machine.firmware.initialized


def test_machine_single_disk_controller():
    env = Environment()
    machine = Machine(env)
    machine.attach_disk_controller(object())
    with pytest.raises(RuntimeError):
        machine.attach_disk_controller(object())


# -- firmware ---------------------------------------------------------------------------

def test_firmware_reboot_counts_inits():
    env = Environment()
    machine = Machine(env, MachineSpec(firmware_init_seconds=10.0))

    def proc(env):
        yield from machine.firmware.power_on()
        yield from machine.firmware.reboot()

    env.run(until=env.process(proc(env)))
    assert env.now == pytest.approx(20.0)
    assert machine.firmware.init_count == 2


def test_network_boot_requires_initialized_firmware():
    env = Environment()
    machine = Machine(env)

    def proc(env):
        yield from machine.firmware.network_boot()

    with pytest.raises(RuntimeError):
        env.run(until=env.process(proc(env)))
