"""Unit tests for metrics, host memory, OS images, and small helpers."""

import pytest

from repro import params
from repro.aoe.server import ImageStore
from repro.cloud.instance import StartupTimeline
from repro.guest.osimage import OsImage
from repro.hw.hostmem import HostMemory, HostMemoryError
from repro.metrics.report import format_ratio, format_table
from repro.metrics.timeseries import TimeSeries
from repro.sim import Environment
from repro.storage.blockdev import BlockRequest, BlockOp, coalesce_runs
from repro.util.intervalmap import IntervalMap

MB = 2**20


# -- TimeSeries ----------------------------------------------------------------

def test_timeseries_statistics():
    series = TimeSeries("tp", unit="ops/s")
    for time, value in ((0, 10.0), (10, 20.0), (20, 30.0)):
        series.record(time, value)
    assert len(series) == 3
    assert series.mean() == 20.0
    assert series.min() == 10.0
    assert series.max() == 30.0
    assert series.values() == [10.0, 20.0, 30.0]
    assert series.times() == [0, 10, 20]


def test_timeseries_mean_between():
    series = TimeSeries("x")
    for time in range(10):
        series.record(float(time), float(time))
    assert series.mean_between(2.0, 5.0) == pytest.approx(3.0)
    with pytest.raises(ValueError):
        series.mean_between(100.0, 200.0)


def test_timeseries_empty_mean_rejected():
    with pytest.raises(ValueError):
        TimeSeries("empty").mean()


def test_timeseries_normalized():
    series = TimeSeries("x")
    series.record(0, 50.0)
    series.record(1, 100.0)
    ratio = series.normalized_to(100.0)
    assert ratio.values() == [0.5, 1.0]
    with pytest.raises(ValueError):
        series.normalized_to(0.0)


# -- report formatting -----------------------------------------------------------

def test_format_table_basic():
    text = format_table(["name", "value"],
                        [["alpha", 1.5], ["beta", 200.0]],
                        title="Title")
    lines = text.splitlines()
    assert lines[0] == "Title"
    assert "name" in lines[1]
    assert "alpha" in lines[3]
    assert "1.50" in lines[3]
    assert "200" in lines[4]


def test_format_table_row_width_mismatch():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["only-one"]])


def test_format_table_empty_rows():
    text = format_table(["a", "b"], [])
    assert "a" in text


def test_format_ratio():
    assert format_ratio(94.8, 100.0) == "0.948x"
    assert format_ratio(1.0, 0.0) == "n/a"


# -- HostMemory -------------------------------------------------------------------

def test_hostmem_allocate_lookup_free():
    memory = HostMemory()
    thing = object()
    address = memory.allocate(thing)
    assert memory.lookup(address) is thing
    assert address in memory
    memory.free(address)
    assert address not in memory
    with pytest.raises(HostMemoryError):
        memory.lookup(address)


def test_hostmem_explicit_address_conflict():
    memory = HostMemory()
    memory.allocate("a", address=0x1000)
    with pytest.raises(HostMemoryError):
        memory.allocate("b", address=0x1000)


def test_hostmem_replace():
    memory = HostMemory()
    address = memory.allocate("old")
    assert memory.replace(address, "new") == "old"
    assert memory.lookup(address) == "new"


def test_hostmem_double_free_rejected():
    memory = HostMemory()
    address = memory.allocate("x")
    memory.free(address)
    with pytest.raises(HostMemoryError):
        memory.free(address)


# -- OsImage ------------------------------------------------------------------------

def test_osimage_requires_whole_chunks():
    with pytest.raises(ValueError):
        OsImage(size_bytes=MB + 1)


def test_osimage_boot_trace_deterministic():
    image_a = OsImage(size_bytes=64 * MB, boot_read_bytes=4 * MB)
    image_b = OsImage(size_bytes=64 * MB, boot_read_bytes=4 * MB)
    assert image_a.boot_trace() == image_b.boot_trace()
    different = OsImage(size_bytes=64 * MB, boot_read_bytes=4 * MB,
                        seed=999)
    assert different.boot_trace() != image_a.boot_trace()


def test_osimage_boot_trace_covers_requested_bytes():
    image = OsImage(size_bytes=64 * MB, boot_read_bytes=4 * MB)
    total = sum(count for step in image.boot_trace()
                for _, count in step.reads) * params.SECTOR_BYTES
    assert total == pytest.approx(4 * MB, rel=0.05)
    for step in image.boot_trace():
        for lba, count in step.reads:
            assert 0 <= lba < image.total_sectors
            assert lba + count <= image.total_sectors


def test_osimage_boot_lbas_match_trace():
    image = OsImage(size_bytes=64 * MB, boot_read_bytes=2 * MB)
    lbas = image.boot_lbas()
    from_trace = [lba for step in image.boot_trace()
                  for lba, _ in step.reads]
    assert lbas == from_trace


def test_verify_deployed_detects_mismatch():
    image = OsImage(size_bytes=32 * MB)
    disk = IntervalMap()
    for start, end, token in image.contents.runs():
        disk.set_range(start, end - start, token)
    assert image.verify_deployed(disk)
    disk.set_range(100, 1, "garbage")
    assert not image.verify_deployed(disk)
    # ...unless the guest wrote it.
    written = IntervalMap()
    written.set_range(100, 1, True)
    assert image.verify_deployed(disk, written)


# -- ImageStore -------------------------------------------------------------------------

def make_store(**kwargs):
    env = Environment()
    contents = IntervalMap()
    contents.set_range(0, 1 << 20, "img")
    return env, ImageStore(env, contents, 1 << 20, **kwargs)


def test_imagestore_hit_ratio_validated():
    with pytest.raises(ValueError):
        make_store(cache_hit_ratio=1.5)


def test_imagestore_streaming_reads_always_hit():
    env, store = make_store(cache_hit_ratio=0.0, hit_seconds=1e-4,
                            miss_seconds=1.0)

    def proc():
        start = env.now
        yield from store.read(0, 2048)  # >= STREAMING_SECTORS
        return env.now - start

    elapsed = env.run(until=env.process(proc()))
    assert elapsed < 0.1  # no miss penalty


def test_imagestore_small_reads_respect_hit_ratio():
    env, store = make_store(cache_hit_ratio=0.5, hit_seconds=1e-4,
                            miss_seconds=1e-2)

    def proc():
        start = env.now
        for _ in range(20):
            yield from store.read(0, 8)
        return env.now - start

    elapsed = env.run(until=env.process(proc()))
    # ~10 misses at 10 ms each dominate.
    assert 0.05 < elapsed < 0.2


def test_imagestore_write_roundtrip():
    env, store = make_store()

    def proc():
        yield from store.write(10, [(10, 20, "newdata")])
        runs = yield from store.read(10, 10)
        return runs

    runs = env.run(until=env.process(proc()))
    assert runs == [(10, 20, "newdata")]


# -- StartupTimeline -----------------------------------------------------------------------

def test_timeline_totals():
    timeline = StartupTimeline(power_on=10.0)
    timeline.add_segment("firmware init", 133.0)
    timeline.add_segment("OS boot", 29.0)
    timeline.ready = 172.0
    assert timeline.total == 162.0
    assert timeline.total_excluding_firmware() == 29.0


# -- blockdev helpers ------------------------------------------------------------------------

def test_block_request_validation():
    with pytest.raises(ValueError):
        BlockRequest(BlockOp.READ, lba=-1, sector_count=1)
    with pytest.raises(ValueError):
        BlockRequest(BlockOp.READ, lba=0, sector_count=0)


def test_coalesce_runs():
    runs = [(0, 5, "a"), (5, 10, "a"), (10, 12, "b"), (20, 25, "a")]
    assert coalesce_runs(runs) == [(0, 10, "a"), (10, 12, "b"),
                                   (20, 25, "a")]
    assert coalesce_runs([]) == []
