"""Tests for the Ethernet switch, NICs, and InfiniBand fabric."""

import pytest

from repro import params
from repro.hw.machine import Machine
from repro.net import EthernetSwitch, IbFabric, IbHca, LossModel, Nic
from repro.sim import Environment


def make_net(**kwargs):
    env = Environment()
    switch = EthernetSwitch(env, **kwargs)
    a = Nic(env, switch, "a")
    b = Nic(env, switch, "b")
    return env, switch, a, b


def run(env, generator):
    return env.run(until=env.process(generator))


def test_frame_delivery():
    env, switch, a, b = make_net()

    def proc():
        delivered = yield from a.send("b", "hello", 100)
        frame = yield from b.recv()
        return delivered, frame.payload

    delivered, payload = run(env, proc())
    assert delivered
    assert payload == "hello"
    assert a.tx_frames == 1
    assert b.rx_frames == 1


def test_serialization_delay_at_line_rate():
    env, switch, a, b = make_net()
    payload_bytes = 8962  # jumbo frame

    def proc():
        yield from a.send("b", "x", payload_bytes)
        yield from b.recv()

    run(env, proc())
    wire = payload_bytes + params.ETH_FRAME_OVERHEAD
    expected = 2 * wire * 8 / params.GBE_BITS_PER_SECOND \
        + params.SWITCH_LATENCY_SECONDS
    assert env.now == pytest.approx(expected, rel=0.05)


def test_mtu_enforced():
    env, switch, a, b = make_net(mtu=1500)

    def proc():
        yield from a.send("b", "big", 5000)

    with pytest.raises(ValueError):
        run(env, proc())


def test_unknown_destination_rejected():
    env, switch, a, b = make_net()

    def proc():
        yield from a.send("nowhere", "x", 10)

    with pytest.raises(ValueError):
        run(env, proc())


def test_duplicate_port_name_rejected():
    env, switch, a, b = make_net()
    with pytest.raises(ValueError):
        Nic(env, switch, "a")


def test_loss_model_drops_frames():
    env = Environment()
    switch = EthernetSwitch(env, loss=LossModel(0.5, seed=42))
    a = Nic(env, switch, "a")
    b = Nic(env, switch, "b")
    outcomes = []

    def proc():
        for _ in range(100):
            delivered = yield from a.send("b", "x", 100)
            outcomes.append(delivered)

    run(env, proc())
    assert 20 < sum(outcomes) < 80
    assert switch.loss.dropped == 100 - sum(outcomes)


def test_loss_probability_validated():
    with pytest.raises(ValueError):
        LossModel(1.5)


def test_rx_ring_overflow_drops():
    env = Environment()
    switch = EthernetSwitch(env)
    a = Nic(env, switch, "a")
    b = Nic(env, switch, "b", rx_ring_size=4)

    def proc():
        for _ in range(10):
            yield from a.send("b", "x", 100)

    run(env, proc())
    env.run()  # drain in-flight deliveries
    assert b.rx_pending == 4
    assert b.rx_dropped == 6


def test_nic_poll_nonblocking():
    env, switch, a, b = make_net()
    assert b.poll() is None

    def proc():
        yield from a.send("b", "x", 10)

    run(env, proc())
    env.run()  # drain in-flight deliveries
    assert b.poll() is not None
    assert b.poll() is None


def test_two_senders_share_receiver_port():
    """Two flows into one port cannot exceed the port's line rate."""
    env = Environment()
    switch = EthernetSwitch(env)
    a = Nic(env, switch, "a")
    b = Nic(env, switch, "b")
    c = Nic(env, switch, "c", rx_ring_size=10000)
    frame_bytes = 8962
    n = 50

    def sender(nic):
        for _ in range(n):
            yield from nic.send("c", "x", frame_bytes)

    env.process(sender(a))
    env.process(sender(b))
    env.run()
    total_bits = 2 * n * (frame_bytes + params.ETH_FRAME_OVERHEAD) * 8
    minimum = total_bits / params.GBE_BITS_PER_SECOND
    assert env.now >= minimum * 0.99


# -- InfiniBand ---------------------------------------------------------------

def make_ib():
    env = Environment()
    fabric = IbFabric(env)
    m1 = Machine(env, name="n1")
    m2 = Machine(env, name="n2")
    h1 = IbHca(env, fabric, m1)
    h2 = IbHca(env, fabric, m2)
    return env, fabric, m1, m2, h1, h2


def test_rdma_write_latency_baremetal():
    env, fabric, m1, m2, h1, h2 = make_ib()

    def proc():
        elapsed = yield from h1.rdma_write("n2", 64 * 1024)
        return elapsed

    elapsed = run(env, proc())
    expected = params.IB_BASE_LATENCY_SECONDS \
        + 64 * 1024 * 8 / params.IB_BITS_PER_SECOND
    assert elapsed == pytest.approx(expected, rel=0.01)


def test_rdma_latency_tax_from_condition():
    env, fabric, m1, m2, h1, h2 = make_ib()
    m1.set_condition(m1.condition.with_(
        label="kvm", ib_latency_factor=params.KVM_IB_LATENCY_FACTOR))

    def proc():
        kvm_time = yield from h1.rdma_write("n2", 8)
        bare_time = yield from h2.rdma_write("n1", 8)
        return kvm_time, bare_time

    kvm_time, bare_time = run(env, proc())
    assert kvm_time > bare_time
    # Transfer of 8 bytes is negligible: ratio approximates the factor.
    assert kvm_time / bare_time == pytest.approx(
        params.KVM_IB_LATENCY_FACTOR, rel=0.02)


def test_rdma_read_has_two_latency_legs():
    env, fabric, m1, m2, h1, h2 = make_ib()

    def proc():
        write_time = yield from h1.rdma_write("n2", 8)
        read_time = yield from h1.rdma_read("n2", 8)
        return write_time, read_time

    write_time, read_time = run(env, proc())
    assert read_time > write_time


def test_rdma_unknown_peer_rejected():
    env, fabric, m1, m2, h1, h2 = make_ib()

    def proc():
        yield from h1.rdma_write("nope", 8)

    with pytest.raises(ValueError):
        run(env, proc())


def test_hca_send_queue_serializes():
    env, fabric, m1, m2, h1, h2 = make_ib()
    done = []

    def sender():
        yield from h1.rdma_write("n2", 10 * 2**20)
        done.append(env.now)

    env.process(sender())
    env.process(sender())
    env.run()
    assert done[1] >= 2 * done[0] * 0.99


def test_message_latency_analytic():
    env, fabric, m1, m2, h1, h2 = make_ib()
    small = h1.message_latency(8)
    large = h1.message_latency(1 << 20)
    assert small < large
    assert small == pytest.approx(params.IB_BASE_LATENCY_SECONDS, rel=0.01)
