"""Edge cases for the e1000 model and the shared-NIC mediator."""

import pytest

from repro.cloud.scenario import build_testbed
from repro.guest.driver_e1000 import E1000Driver
from repro.guest.osimage import OsImage
from repro.net import e1000
from repro.net.e1000 import E1000Nic
from repro.net.nic import Nic
from repro.sim import Environment, Interrupt
from repro.vmm.bmcast import BmcastVmm
from repro.vmm.mediator_nic import NicMediator, SharedNicPort
from repro.vmm.moderation import FULL_SPEED

MB = 2**20
E1000_BASE = 0xFE00_0000


def small_image():
    return OsImage(size_bytes=32 * MB, boot_read_bytes=2 * MB,
                   boot_think_seconds=1.0)


def make_testbed():
    testbed = build_testbed(image=small_image())
    node = testbed.node
    nic = E1000Nic(testbed.env, testbed.switch,
                   f"{node.machine.name}-e1000", node.machine,
                   mmio_base=E1000_BASE)
    peer = Nic(testbed.env, testbed.switch, "peer")
    return testbed, nic, peer


def run(env, generator):
    return env.run(until=env.process(generator))


# -- e1000 ring mechanics ------------------------------------------------------

def test_tx_ring_wraps_around():
    testbed, nic, peer = make_testbed()
    env = testbed.env
    driver = E1000Driver(testbed.node.machine, nic)
    count = e1000.RING_SIZE + 20  # force a wrap

    def proc():
        for index in range(count):
            yield from driver.send("peer", index, 64)

    run(env, proc())
    env.run()
    assert nic.tx_frames == count
    assert driver.frames_sent == count


def test_rx_ring_wraps_around():
    testbed, nic, peer = make_testbed()
    env = testbed.env
    driver = E1000Driver(testbed.node.machine, nic)
    count = e1000.RING_SIZE + 20
    received = []

    def sender():
        for index in range(count):
            yield from peer.send(nic.name, index, 64)

    def receiver():
        yield from driver.start()
        for _ in range(count):
            frame = yield from driver.recv()
            received.append(frame.payload)

    run(env, receiver.__call__() if False else _pair(env, receiver,
                                                     sender))
    assert received == list(range(count))


def _pair(env, receiver, sender):
    done = env.process(receiver())

    def both():
        yield env.timeout(1e-3)
        yield from sender()
        yield done

    return both()


def test_icr_read_to_clear():
    testbed, nic, peer = make_testbed()
    nic.ims = e1000.ICR_RXT0
    nic._interrupt(e1000.ICR_RXT0)
    assert nic.mmio_read(nic.mmio_base + e1000.REG_ICR) \
        == e1000.ICR_RXT0
    assert nic.mmio_read(nic.mmio_base + e1000.REG_ICR) == 0


def test_interrupt_gated_by_ims():
    testbed, nic, peer = make_testbed()
    nic.ims = 0
    nic._interrupt(e1000.ICR_RXT0)
    assert nic.interrupts_raised == 0
    nic.ims = e1000.ICR_RXT0
    nic._interrupt(e1000.ICR_RXT0)
    assert nic.interrupts_raised == 1


# -- shared-NIC mediator edges ------------------------------------------------------

def make_shared(testbed, nic):
    node = testbed.node
    mediator = NicMediator(testbed.env, node.machine, nic)
    port = SharedNicPort(mediator)
    vmm = BmcastVmm(testbed.env, node.machine, port, testbed.server_port,
                    image_sectors=testbed.image.total_sectors,
                    policy=FULL_SPEED, extra_mediators=[mediator],
                    auto_devirtualize=False)
    env = testbed.env

    def scenario():
        yield from node.machine.power_on()
        yield from node.machine.firmware.network_boot()
        yield from vmm.boot()

    env.run(until=env.process(scenario()))
    return vmm, mediator


def test_guest_frames_dropped_when_guest_ring_unconfigured():
    testbed, nic, peer = make_testbed()
    env = testbed.env
    vmm, mediator = make_shared(testbed, nic)

    def flood():
        for _ in range(5):
            yield from peer.send(nic.name, "unwanted", 100,
                                 protocol="guest")
        # Let the mediator's poll loop process the shadow ring.
        yield env.timeout(5e-3)

    run(env, flood())
    assert mediator.guest_frames_dropped == 5
    assert mediator.guest_frames_delivered == 0


def test_guest_rx_ring_overflow_drops_excess():
    testbed, nic, peer = make_testbed()
    env = testbed.env
    vmm, mediator = make_shared(testbed, nic)
    driver = E1000Driver(testbed.node.machine, nic)

    def flood():
        yield from driver.start()
        # More frames than the guest RX ring can hold, none consumed.
        for index in range(e1000.RING_SIZE + 30):
            yield from peer.send(nic.name, index, 64,
                                 protocol="guest")
        yield env.timeout(10e-3)

    run(env, flood())
    assert mediator.guest_frames_dropped > 0
    # Whatever was delivered fits the ring (one slot is the full marker).
    assert mediator.guest_frames_delivered <= e1000.RING_SIZE - 1


def test_vmm_port_poll_and_name():
    testbed, nic, peer = make_testbed()
    vmm, mediator = make_shared(testbed, nic)
    port = SharedNicPort(mediator)
    assert port.name == nic.name
    assert port.switch is testbed.switch
    assert port.poll() is None


def test_mediator_uninstall_requires_quiescence():
    testbed, nic, peer = make_testbed()
    env = testbed.env
    vmm, mediator = make_shared(testbed, nic)
    # Force a pending VMM frame, then try to uninstall.
    mediator._vmm_tx_queue.append(object())
    with pytest.raises(RuntimeError):
        mediator.uninstall()
    mediator._vmm_tx_queue.clear()


def test_double_install_rejected():
    testbed, nic, peer = make_testbed()
    vmm, mediator = make_shared(testbed, nic)
    with pytest.raises(RuntimeError):
        mediator.install()
