"""Tests for the telemetry subsystem (repro.obs)."""

import json

import pytest

from repro.cli import main
from repro.cloud.provisioner import Provisioner
from repro.cloud.scenario import build_testbed
from repro.guest.osimage import OsImage
from repro.metrics.timeseries import TimeSeries
from repro.obs import (NULL_REGISTRY, NULL_TELEMETRY, NULL_TRACER,
                       MetricsRegistry, SpanTracer, Telemetry,
                       telemetry_to_dict, telemetry_to_prometheus)
from repro.sim import Environment


def small_image(size_mb=256):
    return OsImage(size_bytes=size_mb * 2**20,
                   boot_read_bytes=24 * 2**20)


# -- registry ---------------------------------------------------------------


def test_counter_and_gauge_basics():
    registry = MetricsRegistry()
    counter = registry.counter("requests_total", op="read")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    gauge = registry.gauge("depth")
    gauge.set(3)
    gauge.add(-1)
    assert gauge.value == 2
    assert gauge.max == 3


def test_registry_identity_is_name_plus_labels():
    registry = MetricsRegistry()
    a = registry.counter("x", op="read")
    b = registry.counter("x", op="read")
    c = registry.counter("x", op="write")
    d = registry.counter("x")
    assert a is b
    assert a is not c and a is not d
    assert len(registry) == 3


def test_registry_rejects_kind_conflicts():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_histogram_bucketing_monotone():
    registry = MetricsRegistry()
    histogram = registry.histogram("latency")
    for value in (1e-6, 2e-6, 1e-3, 0.5, 1.0, 10.0):
        histogram.observe(value)
    assert histogram.count == 6
    bounds = histogram.bucket_bounds()
    assert all(b1 < b2 for b1, b2 in zip(bounds, bounds[1:]))
    # Each observation landed in a bucket whose bound covers it.
    assert sum(histogram.buckets.values()) == 6


def test_histogram_percentiles_bracket_the_data():
    registry = MetricsRegistry()
    histogram = registry.histogram("latency")
    for i in range(1, 101):
        histogram.observe(i / 1000.0)  # 1ms .. 100ms
    summary = histogram.summary()
    assert summary["count"] == 100
    assert summary["min"] == pytest.approx(0.001)
    assert summary["max"] == pytest.approx(0.100)
    # Log-bucketed percentiles are approximate but ordered and in-range.
    assert summary["min"] <= summary["p50"] <= summary["p95"] \
        <= summary["p99"] <= summary["max"]
    # Within one growth factor of the exact median (0.0505).
    assert 0.0505 / 2 <= summary["p50"] <= 0.0505 * 2


def test_histogram_empty_is_well_defined():
    registry = MetricsRegistry()
    histogram = registry.histogram("latency")
    assert histogram.mean == 0.0
    assert histogram.percentile(0.5) == 0.0
    assert histogram.percentile(0.99) == 0.0
    summary = histogram.summary()
    assert summary == {"count": 0, "sum": 0.0, "mean": 0.0,
                       "min": 0.0, "max": 0.0,
                       "p50": 0.0, "p95": 0.0, "p99": 0.0}
    with pytest.raises(ValueError):
        histogram.percentile(1.5)


def test_null_registry_is_inert_and_shared():
    before = len(NULL_REGISTRY)
    counter = NULL_REGISTRY.counter("anything", op="x")
    counter.inc(100)
    histogram = NULL_REGISTRY.histogram("h")
    histogram.observe(1.0)
    assert counter.value == 0
    assert histogram.count == 0
    assert len(NULL_REGISTRY) == before == 0


# -- time series ------------------------------------------------------------


def test_timeseries_percentile_interpolates():
    series = TimeSeries("t")
    for i, value in enumerate([10.0, 20.0, 30.0, 40.0]):
        series.record(float(i), value)
    assert series.percentile(0.0) == 10.0
    assert series.percentile(1.0) == 40.0
    assert series.percentile(0.5) == pytest.approx(25.0)


def test_timeseries_time_weighted_mean():
    series = TimeSeries("t")
    series.record(0.0, 10.0)   # held for 1s
    series.record(1.0, 0.0)    # held for 9s
    series.record(10.0, 5.0)   # no tail by default
    assert series.time_weighted_mean() == pytest.approx(1.0)
    # With an explicit end, the last value is held to it.
    assert series.time_weighted_mean(until=20.0) \
        == pytest.approx((10.0 + 0.0 * 9 + 5.0 * 10) / 20.0)
    # Degenerate: single timestamp falls back to the plain mean.
    flat = TimeSeries("flat")
    flat.record(1.0, 2.0)
    flat.record(1.0, 4.0)
    assert flat.time_weighted_mean() == pytest.approx(3.0)


# -- spans ------------------------------------------------------------------


def test_span_nesting_and_ordering():
    env = Environment()
    tracer = SpanTracer(env)
    root = tracer.start("deploy", parent=None)
    tracer.ambient = root
    child = tracer.start("phase:one")
    grandchild = tracer.start("aoe-read", parent=child)
    tracer.end(grandchild)
    tracer.end(child)
    tracer.end(root)
    assert child.parent is root
    assert grandchild in child.children
    assert [span.name for span in tracer.walk()] \
        == ["deploy", "phase:one", "aoe-read"]
    assert grandchild.end <= child.end <= root.end


def test_span_capacity_drops_leaves_keeps_structure():
    env = Environment()
    tracer = SpanTracer(env, capacity=5)
    root = tracer.start("deploy", parent=None)
    phase = tracer.start("phase:one", parent=root)
    tracer.ambient = phase
    for _ in range(10):
        tracer.end(tracer.start("leaf"))
    assert tracer.dropped_spans == 7  # 5 recorded, rest dropped
    # A late phase transition still records despite the full buffer.
    late = tracer.start("phase:two", parent=root)
    assert late in root.children
    assert tracer.find("phase:two")
    payload = tracer.to_dict()
    assert payload["dropped"] == 7


def test_null_tracer_is_stateless():
    NULL_TRACER.ambient = object()  # silently ignored
    assert NULL_TRACER.ambient is None
    span = NULL_TRACER.start("x")
    NULL_TRACER.end(span)
    assert len(NULL_TRACER) == 0
    assert NULL_TRACER.to_dict() == {"spans": [], "recorded": 0,
                                     "dropped": 0}


# -- exporters --------------------------------------------------------------


def _telemetry_with_data():
    env = Environment()
    telemetry = Telemetry(env)
    telemetry.registry.counter("reqs_total", op="read").inc(3)
    telemetry.registry.gauge("depth").set(2)
    histogram = telemetry.registry.histogram("lat_seconds")
    for value in (0.001, 0.002, 0.004):
        histogram.observe(value)
    root = telemetry.tracer.start("deploy", parent=None)
    telemetry.tracer.end(root)
    return telemetry


def test_json_export_shape():
    payload = telemetry_to_dict(_telemetry_with_data())
    assert set(payload) >= {"sim", "counters", "gauges", "histograms",
                            "series", "spans"}
    [counter] = payload["counters"]
    assert counter["name"] == "reqs_total"
    assert counter["labels"] == {"op": "read"}
    assert counter["value"] == 3
    [histogram] = payload["histograms"]
    assert histogram["count"] == 3
    assert {"p50", "p95", "p99", "buckets"} <= set(histogram)
    [span] = payload["spans"]
    assert span["name"] == "deploy"
    json.dumps(payload)  # must be serializable as-is


def test_prometheus_export_shape():
    text = telemetry_to_prometheus(_telemetry_with_data())
    assert '# TYPE reqs_total counter' in text
    assert 'reqs_total{op="read"} 3' in text
    assert '# TYPE lat_seconds histogram' in text
    assert 'le="+Inf"' in text
    assert "lat_seconds_count 3" in text
    # Cumulative bucket counts end at the total.
    inf_line = [line for line in text.splitlines()
                if 'le="+Inf"' in line][0]
    assert inf_line.endswith(" 3")


def test_prometheus_export_escapes_labels_and_help():
    env = Environment()
    telemetry = Telemetry(env)
    telemetry.registry.counter(
        "odd_total", help='has "quotes" and \\slashes\\\nand lines',
        path='C:\\tmp\n"x"').inc()
    text = telemetry_to_prometheus(telemetry)
    # HELP escapes backslash + newline; quotes stay literal.
    assert ('# HELP odd_total has "quotes" and '
            '\\\\slashes\\\\\\nand lines') in text
    # Label values additionally escape the quote.
    assert r'path="C:\\tmp\n\"x\""' in text
    # Every line is still single-line exposition format.
    assert all("\n" not in line for line in text.split("\n"))


def test_empty_histogram_exports_cleanly():
    env = Environment()
    telemetry = Telemetry(env)
    telemetry.registry.histogram("never_observed_seconds")
    payload = telemetry_to_dict(telemetry)
    [histogram] = payload["histograms"]
    assert histogram["count"] == 0
    assert histogram["p99"] == 0.0
    json.dumps(payload)
    text = telemetry_to_prometheus(telemetry)
    assert 'never_observed_seconds_bucket{le="+Inf"} 0' in text
    assert "never_observed_seconds_count 0" in text


def test_telemetry_json_round_trip(tmp_path):
    telemetry = _telemetry_with_data()
    out = tmp_path / "telemetry.json"
    telemetry.write(str(out))
    payload = json.loads(out.read_text())
    direct = telemetry_to_dict(telemetry)
    assert payload == json.loads(json.dumps(direct))
    [counter] = payload["counters"]
    assert counter["value"] == 3
    [histogram] = payload["histograms"]
    assert histogram["count"] == 3
    [span] = payload["spans"]
    assert span["name"] == "deploy"


def test_null_telemetry_write_refuses():
    with pytest.raises(RuntimeError):
        NULL_TELEMETRY.write("/tmp/never.json")


# -- determinism ------------------------------------------------------------


def _deploy_bmcast(telemetry):
    env = telemetry.env if telemetry.enabled else Environment()
    testbed = build_testbed(image=small_image(), env=env,
                            telemetry=telemetry)
    provisioner = Provisioner(testbed)
    instance = env.run(until=env.process(
        provisioner.deploy("bmcast", skip_firmware=True)))
    env.run(until=instance.platform.copier.done)
    env.run(until=env.now + 10.0)
    return env, instance


def test_telemetry_does_not_perturb_the_timeline():
    env_off, off = _deploy_bmcast(NULL_TELEMETRY)
    env_on, on = _deploy_bmcast(Telemetry(Environment()))
    assert off.timeline.total == on.timeline.total
    assert off.timeline.segments == on.timeline.segments
    assert env_off.now == env_on.now
    assert env_off.events_processed == env_on.events_processed
    assert off.platform.copier.blocks_filled \
        == on.platform.copier.blocks_filled


def test_deploy_records_phase_tree_and_instruments():
    _, instance = _deploy_bmcast(Telemetry(Environment()))
    telemetry = instance.platform.telemetry
    phases = {span.name for span in telemetry.tracer.walk()
              if span.name.startswith("phase:")}
    assert {"phase:initialization", "phase:deployment",
            "phase:devirtualization", "phase:baremetal"} <= phases
    rtt = telemetry.registry.histogram("aoe_request_seconds", op="read")
    assert rtt.count > 0
    assert rtt.summary()["p50"] > 0


# -- CLI acceptance ---------------------------------------------------------


def test_cli_metrics_out_json(tmp_path, capsys):
    out_file = tmp_path / "m.json"
    assert main(["deploy", "--method", "bmcast", "--image-gb", "0.125",
                 "--wait", "--metrics-out", str(out_file)]) == 0
    payload = json.loads(out_file.read_text())

    def names(node):
        yield node["name"]
        for child in node.get("children", []):
            yield from names(child)

    all_names = [name for root in payload["spans"]
                 for name in names(root)]
    phases = {name for name in all_names if name.startswith("phase:")}
    assert len(phases) >= 4
    assert any({"p50", "p95", "p99"} <= set(histogram)
               for histogram in payload["histograms"])
    assert "telemetry written" in capsys.readouterr().out


def test_cli_metrics_out_prometheus(tmp_path, capsys):
    out_file = tmp_path / "m.prom"
    assert main(["deploy", "--method", "baremetal",
                 "--image-gb", "0.125",
                 "--metrics-out", str(out_file)]) == 0
    capsys.readouterr()
    text = out_file.read_text()
    assert "# TYPE" in text
    assert "deploy_span" not in text  # spans are JSON-only


def test_cli_metrics_subcommand(capsys):
    assert main(["metrics", "--image-gb", "0.125"]) == 0
    out = capsys.readouterr().out
    assert "Deployment span tree" in out
    assert "deploy:bmcast" in out
    assert "p50" in out
