"""The simulation-kernel fast path: lanes, pooling, and replay equality.

The optimized scheduler (zero-delay FIFO lanes + lazy cancellation +
Timeout pooling) must be observably indistinguishable from the
pure-heap reference (``Environment(fast_lane=False)``): same popped
order, same trace-hook stream, byte-identical replay digests over real
scenarios.  These tests pin each mechanism individually, then prove
whole-scenario equality for a deployment, a scale-out wave, and an
elastic grow -> shrink loop.
"""

import pytest

from repro.analysis.replay import (
    ReplayRecorder,
    deployment_scenario,
)
from repro.guest.osimage import OsImage
from repro.sim import Environment, Event, SimulationError
from repro.sim.events import Timeout

MB = 2**20


# -- fast-lane ordering -------------------------------------------------------

def _pop_order(env):
    """Names of events in pop order, via the trace hook."""
    order = []
    env.trace_hook = lambda now, event: order.append(
        (now, getattr(event, "name", None) or type(event).__name__))
    return order


def test_zero_delay_events_pop_fifo():
    env = Environment()
    order = []

    def note(tag):
        def callback(event):
            order.append(tag)
        return callback

    for tag in "abcde":
        timeout = env.timeout(0)
        timeout.callbacks.append(note(tag))
    env.run()
    assert order == list("abcde")


def test_urgent_lane_beats_normal_lane_at_same_time():
    env = Environment()
    order = []
    late = env.event()
    late.succeed()  # normal priority, scheduled first
    late.callbacks.append(lambda event: order.append("normal"))
    # Urgent scheduling is how interrupts jump the queue: trigger the
    # event by hand and schedule it on the urgent lane.
    early = env.event()
    early._ok = True
    early._value = None
    env.schedule(early, priority=Environment.PRIORITY_URGENT)
    early.callbacks.append(lambda event: order.append("urgent"))
    env.run()
    assert order == ["urgent", "normal"]


def test_lane_and_heap_interleave_in_time_order():
    """A zero-delay chain must not starve or overtake timed events."""
    env = Environment()
    log = []

    def timed(delay, tag):
        yield env.timeout(delay)
        log.append((env.now, tag))

    def chain():
        for index in range(3):
            yield env.timeout(0)
            log.append((env.now, f"zero-{index}"))
        yield env.timeout(0.5)
        log.append((env.now, "after"))

    env.process(timed(0.0, "timed-0"))
    env.process(chain())
    env.process(timed(0.25, "timed-quarter"))
    env.run()
    assert log == [
        (0.0, "timed-0"), (0.0, "zero-0"), (0.0, "zero-1"),
        (0.0, "zero-2"), (0.25, "timed-quarter"), (0.5, "after"),
    ]


# -- lazy cancellation --------------------------------------------------------

def test_cancel_discards_event_without_trace():
    env = Environment()
    order = _pop_order(env)
    doomed = env.timeout(0)
    doomed.callbacks.append(lambda event: order.append("doomed-ran"))
    env.timeout(0)
    env.cancel(doomed)
    env.run()
    assert "doomed-ran" not in order
    assert len(order) == 1  # only the surviving timeout


def test_cancelled_head_does_not_stall_peek():
    env = Environment()
    doomed = env.timeout(1.0)
    env.timeout(2.0)
    env.cancel(doomed)
    # peek must prune the dead head, not report its time.
    assert env.peek() == 2.0


def test_run_until_time_skips_cancelled_head():
    env = Environment()
    fired = []
    doomed = env.timeout(1.0)
    keeper = env.timeout(3.0)
    keeper.callbacks.append(lambda event: fired.append(env.now))
    env.cancel(doomed)
    # A dead head at t=1 must not make run(until=2) process anything.
    env.run(until=2.0)
    assert env.now == 2.0
    assert fired == []
    env.run(until=4.0)
    assert fired == [3.0]


def test_cancel_works_on_reference_scheduler_too():
    env = Environment(fast_lane=False)
    order = _pop_order(env)
    doomed = env.timeout(0)
    env.timeout(0)
    env.cancel(doomed)
    env.run()
    assert len(order) == 1


# -- Timeout pooling ----------------------------------------------------------

def test_pooled_timeout_objects_are_recycled():
    env = Environment()
    seen = []

    def worker():
        for _ in range(5):
            timeout = env.pooled_timeout(0)
            seen.append(id(timeout))
            yield timeout

    env.run(until=env.process(worker()))
    # After the first trip through step(), the same object comes back.
    assert len(set(seen)) < len(seen)


def test_pooled_timeout_disabled_on_reference_scheduler():
    env = Environment(fast_lane=False)
    timeout = env.pooled_timeout(0)
    assert type(timeout) is Timeout
    assert not timeout._pooled  # plain, never recycled


def test_pooled_timeout_rejects_negative_delay():
    env = Environment()

    def worker():
        yield env.pooled_timeout(0)  # prime the pool
        env.pooled_timeout(-1.0)

    with pytest.raises(ValueError):
        env.run(until=env.process(worker()))


def test_pooled_timeout_carries_value():
    env = Environment()
    values = []

    def worker():
        values.append((yield env.pooled_timeout(0, value="first")))
        values.append((yield env.pooled_timeout(0, value="second")))

    env.run(until=env.process(worker()))
    assert values == ["first", "second"]


# -- double-processing diagnostics -------------------------------------------

def test_double_scheduled_event_raises_simulation_error():
    env = Environment()
    event = Event(env)
    event.succeed()
    env.schedule(event)  # the bug: a second queue entry, same event
    with pytest.raises(SimulationError, match="scheduled twice"):
        env.run()


def test_double_schedule_recoverable_via_cancel():
    env = Environment()
    event = Event(env)
    event.succeed()
    env.schedule(event)
    env.cancel(event)  # the documented fix for a duplicate entry
    env.run()
    assert event.processed


# -- whole-scenario replay equality ------------------------------------------

def _digest_of(scenario) -> tuple:
    recorder = ReplayRecorder()
    scenario(recorder)
    return recorder.digest(), recorder.events


def _image_factory(size_mb=16):
    return lambda: OsImage(size_bytes=size_mb * MB,
                           boot_read_bytes=4 * MB,
                           boot_think_seconds=0.5)


def test_deploy_replays_identically_across_schedulers():
    fast = _digest_of(deployment_scenario(_image_factory(), wait=True,
                                          fast_lane=True))
    reference = _digest_of(deployment_scenario(_image_factory(),
                                               wait=True,
                                               fast_lane=False))
    assert fast == reference


def test_scaleout_wave_replays_identically_across_schedulers():
    def scenario(fast_lane):
        return deployment_scenario(
            _image_factory(), node_count=4, server_count=2, p2p=True,
            select_policy="least-outstanding", wave_size=2, wait=True,
            fast_lane=fast_lane)

    assert _digest_of(scenario(True)) == _digest_of(scenario(False))


def test_ctl_grow_shrink_replays_identically_across_schedulers():
    from repro.ctl import elasticity_scenario

    def scenario(fast_lane):
        return elasticity_scenario(
            _image_factory(), node_count=4, duration=900.0,
            fast_lane=fast_lane)

    assert _digest_of(scenario(True)) == _digest_of(scenario(False))


# -- transfer coalescing ------------------------------------------------------

def _deploy_counting_reads(policy):
    from repro.cloud.scenario import build_testbed
    from repro.vmm.bmcast import BmcastVmm

    image = OsImage(size_bytes=16 * MB, boot_read_bytes=2 * MB,
                    boot_think_seconds=0.2)
    testbed = build_testbed(image=image)
    node = testbed.node
    env = testbed.env
    vmm = BmcastVmm(env, node.machine, node.vmm_nic,
                    testbed.server_port,
                    image_sectors=image.total_sectors, policy=policy)

    def scenario():
        yield from node.machine.power_on()
        yield from node.machine.firmware.network_boot()
        yield from vmm.boot()
        yield vmm.copier.done

    env.run(until=env.process(scenario()))
    env.run(until=env.now + 5.0)
    assert vmm.deployment.bitmap.complete
    return testbed.store.reads, vmm.deployment.bitmap.block_count


def test_full_speed_deploy_coalesces_fetches():
    """Unmoderated deploys batch contiguous pristine runs: far fewer
    AoE commands than blocks."""
    from repro.vmm.moderation import FULL_SPEED

    reads, blocks = _deploy_counting_reads(FULL_SPEED)
    assert reads < blocks / 2, \
        f"{reads} server reads for {blocks} blocks — not coalescing"


def test_paced_deploy_keeps_per_block_pipeline():
    """Moderated policies must keep the exact pre-optimization
    per-block cadence (outage and interference behavior depend on it)."""
    from repro.vmm.moderation import ModerationPolicy

    policy = ModerationPolicy(write_interval=1e-3,
                              suspend_interval=0.0)
    reads, blocks = _deploy_counting_reads(policy)
    # One read per copied block, plus boot-path reads.
    assert reads >= blocks
