"""The parallel sweep runner: determinism, seeding, and the grid."""

import pytest

from repro.perf import (
    SweepSpec,
    derive_seed,
    expand_grid,
    param_key,
    run_sweep,
    sweep_to_json,
)


# -- seed derivation ----------------------------------------------------------

def test_derive_seed_is_stable():
    assert derive_seed(7, "a=1") == derive_seed(7, "a=1")


def test_derive_seed_varies_by_key_and_parent():
    seeds = {derive_seed(7, "a=1"), derive_seed(7, "a=2"),
             derive_seed(8, "a=1")}
    assert len(seeds) == 3


def test_param_key_is_order_independent():
    assert param_key({"b": 2, "a": 1}) == param_key({"a": 1, "b": 2})
    assert param_key({"a": 1, "b": 2}) == "a=1,b=2"


# -- grid expansion -----------------------------------------------------------

def test_expand_grid_covers_product():
    points = expand_grid({"x": (1, 2), "y": ("a",)})
    assert points == [{"x": 1, "y": "a"}, {"x": 2, "y": "a"}]


def test_spec_rejects_unknown_kind_and_empty_axes():
    with pytest.raises(ValueError):
        SweepSpec(kind="nope", axes={"x": (1,)})
    with pytest.raises(ValueError):
        SweepSpec(kind="ctl", axes={})
    with pytest.raises(ValueError):
        SweepSpec(kind="ctl", axes={"x": ()})


def test_run_sweep_rejects_zero_jobs():
    spec = SweepSpec(kind="ctl", axes={"nodes": (3,)})
    with pytest.raises(ValueError):
        run_sweep(spec, jobs=0)


# -- parallel determinism -----------------------------------------------------

def _tiny_moderation_spec():
    return SweepSpec(
        kind="moderation",
        axes={"write_interval": (0.01, 0.0)},
        parent_seed=11,
        fixed={"image_mb": 24, "fio_mb": 16})


def test_jobs_do_not_change_the_output():
    """The acceptance criterion: --jobs N is byte-identical to --jobs 1."""
    spec = _tiny_moderation_spec()
    serial = sweep_to_json(run_sweep(spec, jobs=1))
    parallel = sweep_to_json(run_sweep(spec, jobs=2))
    assert serial == parallel


def test_sweep_document_shape():
    result = run_sweep(_tiny_moderation_spec(), jobs=2)
    assert result["kind"] == "moderation"
    assert [run["key"] for run in result["runs"]] == \
        sorted(run["key"] for run in result["runs"])
    for run in result["runs"]:
        assert run["seed"] == run["seed"] & 0xFFFFFFFF
        assert "guest_read_mbps" in run["figures"]
        assert "vmm_write_mbps" in run["figures"]
    # Full speed must not slow the guest down relative to moderation.
    by_interval = {run["params"]["write_interval"]: run["figures"]
                   for run in result["runs"]}
    assert by_interval[0.0]["guest_read_mbps"] > 0
