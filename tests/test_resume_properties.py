"""Property test: consistency across shutdown + resume mid-deployment.

Extends the deployment consistency property with the paper 3.3
shutdown/reboot case: guest writes land, the VMM saves its bitmap and
powers off, a new VMM resumes from disk, more guest writes land, and at
the end the disk must still converge to image-plus-newest-guest-data.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import params
from repro.cloud.scenario import build_testbed
from repro.guest.kernel import GuestOs
from repro.guest.osimage import OsImage
from repro.util.intervalmap import IntervalMap
from repro.vmm.bmcast import BmcastVmm
from repro.vmm.moderation import ModerationPolicy

MB = 2**20
IMAGE_MB = 16
IMAGE_SECTORS = IMAGE_MB * MB // params.SECTOR_BYTES

#: Slow enough that the shutdown happens mid-deployment.
POLICY = ModerationPolicy(write_interval=4e-3, suspend_interval=20e-3,
                          guest_io_threshold=200.0)


@st.composite
def schedules(draw):
    def ops():
        operations = []
        for _ in range(draw(st.integers(1, 6))):
            lba = draw(st.integers(0, IMAGE_SECTORS - 1025))
            count = draw(st.integers(1, 1024))
            operations.append((lba, count))
        return operations
    return ops(), ops(), draw(st.floats(0.05, 0.6))


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(schedules())
def test_property_consistency_across_resume(schedule):
    before_ops, after_ops, run_fraction = schedule
    image = OsImage(size_bytes=IMAGE_MB * MB, boot_read_bytes=1 * MB,
                    boot_think_seconds=0.1)
    testbed = build_testbed(image=image)
    node = testbed.node
    env = testbed.env
    oracle = IntervalMap()
    for start, end, token in image.contents.runs():
        oracle.set_range(start, end - start, token)

    vmm1 = BmcastVmm(env, node.machine, node.vmm_nic, testbed.server_port,
                     image_sectors=image.total_sectors, policy=POLICY,
                     auto_devirtualize=False)
    guest = GuestOs(node.machine, image)
    counter = [0]

    def write(lba, count):
        counter[0] += 1
        token = ("resume-prop", counter[0])
        yield from guest.driver.write(lba, count, token)
        guest.written.set_range(lba, count, True)
        oracle.set_range(lba, count, token)

    def first_life():
        yield from node.machine.power_on()
        yield from node.machine.firmware.network_boot()
        yield from vmm1.boot()
        for lba, count in before_ops:
            yield from write(lba, count)
        # Let deployment run partway, then shut down.
        yield env.timeout(run_fraction * 2.0)
        yield from vmm1.shutdown()

    env.run(until=env.process(first_life()))
    assert vmm1.phase == "off"
    filled_before = vmm1.bitmap.filled_count

    vmm2 = BmcastVmm(env, node.machine, node.vmm_nic, testbed.server_port,
                     image_sectors=image.total_sectors, policy=POLICY,
                     resume=True)
    guest2 = GuestOs(node.machine, image)

    def write2(lba, count):
        counter[0] += 1
        token = ("resume-prop", counter[0])
        yield from guest2.driver.write(lba, count, token)
        guest2.written.set_range(lba, count, True)
        oracle.set_range(lba, count, token)

    def second_life():
        yield from node.machine.firmware.reboot()
        yield from node.machine.firmware.network_boot()
        yield from vmm2.boot()
        for lba, count in after_ops:
            yield from write2(lba, count)
        yield vmm2.copier.done

    env.run(until=env.process(second_life()))
    env.run(until=env.now + 5.0)

    # The resumed VMM picked up the saved state (unless the first life
    # finished nothing, which is fine).
    if filled_before:
        assert vmm2.resumed_from_disk
    assert vmm2.bitmap.complete
    assert vmm2.phase == "baremetal"
    disk = node.disk.contents
    for start, end, token in oracle.runs():
        for run_start, run_end, disk_token in disk.runs_in(
                start, end - start):
            assert disk_token == token, (
                f"sector {run_start}: disk {disk_token!r} != oracle "
                f"{token!r} (filled before shutdown: {filled_before})")
