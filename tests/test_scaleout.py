"""Scale-out scheduler tests + the lossy-cluster determinism satellite."""

import pytest

from repro.cloud import Cluster, WaveScheduler, build_testbed
from repro.guest.osimage import OsImage
from repro.vmm.moderation import FULL_SPEED

MB = 2**20


def _image() -> OsImage:
    return OsImage(size_bytes=128 * MB, boot_read_bytes=8 * MB,
                   boot_think_seconds=1.0)


def _deploy_lossy_cluster(node_count: int = 3,
                          loss_probability: float = 0.005):
    testbed = build_testbed(node_count=node_count, server_count=2,
                            loss_probability=loss_probability,
                            image=_image())
    cluster = Cluster(testbed)

    def scenario():
        yield from cluster.deploy_all("bmcast", policy=FULL_SPEED)
        yield from cluster.wait_deployment_complete(settle_seconds=1.0)

    testbed.env.run(until=testbed.env.process(scenario()))
    return testbed, cluster


def _timeline(cluster: Cluster):
    return [
        (instance.timeline.ready,
         instance.platform.copier.finished_at,
         instance.platform.initiator.retransmissions)
        for instance in cluster.instances
    ]


def test_lossy_cluster_deploys_completely():
    """Satellite: frame loss slows deployment but never corrupts it."""
    testbed, cluster = _deploy_lossy_cluster()
    assert cluster.all_baremetal()
    assert cluster.verify_all_deployed()
    # The loss model actually bit: someone had to retransmit.
    total_retransmissions = sum(
        instance.platform.initiator.retransmissions
        for instance in cluster.instances)
    assert total_retransmissions > 0


def test_lossy_cluster_timeline_is_deterministic():
    """Same seed, same simulation: identical timings run to run."""
    _, first = _deploy_lossy_cluster()
    _, second = _deploy_lossy_cluster()
    assert _timeline(first) == _timeline(second)


def test_wave_scheduler_validates_arguments():
    testbed = build_testbed(image=_image())
    cluster = Cluster(testbed)
    with pytest.raises(ValueError):
        WaveScheduler(cluster, wave_size=0)
    with pytest.raises(ValueError):
        WaveScheduler(cluster, wave_size=2, seed_fill_fraction=1.5)


def test_wave_scheduler_batches_in_node_order():
    testbed = build_testbed(node_count=5, server_count=2,
                            image=_image())
    cluster = Cluster(testbed)
    scheduler = WaveScheduler(cluster, wave_size=2)
    env = testbed.env
    env.run(until=env.process(scheduler.run("bmcast",
                                            policy=FULL_SPEED)))
    assert [w.node_indexes for w in scheduler.waves] == \
        [[0, 1], [2, 3], [4]]
    assert len(cluster.instances) == 5
    assert scheduler.summary()["instances"] == 5
    # Every wave launched no earlier than the previous one became ready.
    for earlier, later in zip(scheduler.waves, scheduler.waves[1:]):
        assert later.started_at >= earlier.ready_at


def test_wave_scheduler_seeds_later_waves_from_peers():
    testbed = build_testbed(node_count=4, server_count=1, p2p=True,
                            image=_image())
    cluster = Cluster(testbed)
    scheduler = WaveScheduler(cluster, wave_size=2,
                              seed_fill_fraction=0.5)
    env = testbed.env

    def scenario():
        yield from scheduler.run("bmcast", policy=FULL_SPEED)
        yield from cluster.wait_deployment_complete(settle_seconds=1.0)

    env.run(until=env.process(scenario()))
    assert cluster.verify_all_deployed()
    last = scheduler.waves[-1]
    # The second wave found the first wave's blocks in the directory.
    assert last.peer_hits > 0
    assert last.live_peer_hit_ratio() > 0.3
    # Seed hold: wave 1 waited for wave 0 to be half-filled.
    first_wave = scheduler.waves[0]
    assert last.started_at >= first_wave.ready_at
