"""Tests for the e1000 ring-buffer NIC and the shared-NIC mediator
(paper Section 6)."""

import pytest

from repro.cloud.scenario import build_testbed
from repro.guest.driver_e1000 import E1000Driver
from repro.guest.kernel import GuestOs
from repro.guest.osimage import OsImage
from repro.net.e1000 import E1000Nic
from repro.net.nic import Nic
from repro.sim import Interrupt
from repro.vmm.bmcast import BmcastVmm
from repro.vmm.mediator_nic import NicMediator, SharedNicPort
from repro.vmm.moderation import FULL_SPEED

MB = 2**20
E1000_BASE = 0xFE00_0000


def small_image(size_mb=32):
    return OsImage(size_bytes=size_mb * MB, boot_read_bytes=2 * MB,
                   boot_think_seconds=1.0)


def make_testbed(**kwargs):
    testbed = build_testbed(image=small_image(), **kwargs)
    node = testbed.node
    nic = E1000Nic(testbed.env, testbed.switch,
                   f"{node.machine.name}-e1000", node.machine,
                   mmio_base=E1000_BASE)
    peer = Nic(testbed.env, testbed.switch, "peer")
    return testbed, nic, peer


def echo_service(env, peer):
    """Echo every frame back to its sender."""
    def loop():
        try:
            while True:
                frame = yield from peer.recv()
                yield from peer.send(frame.src, frame.payload,
                                     frame.payload_bytes,
                                     protocol=frame.protocol)
        except Interrupt:
            return
    return env.process(loop(), name="echo")


def run(env, generator):
    return env.run(until=env.process(generator))


# -- bare e1000 (no mediator) ----------------------------------------------------

def test_e1000_send_receive_roundtrip():
    testbed, nic, peer = make_testbed()
    env = testbed.env
    echo_service(env, peer)
    driver = E1000Driver(testbed.node.machine, nic)

    def proc():
        yield from driver.send("peer", "ping", 100)
        frame = yield from driver.recv()
        return frame.payload

    assert run(env, proc()) == "ping"
    assert nic.tx_frames == 1
    assert nic.rx_frames == 1
    assert driver.frames_received == 1


def test_e1000_many_frames_in_order():
    testbed, nic, peer = make_testbed()
    env = testbed.env
    echo_service(env, peer)
    driver = E1000Driver(testbed.node.machine, nic)
    received = []

    def proc():
        for index in range(20):
            yield from driver.send("peer", f"m{index}", 100)
        for _ in range(20):
            frame = yield from driver.recv()
            received.append(frame.payload)

    run(env, proc())
    assert received == [f"m{index}" for index in range(20)]


def test_e1000_drops_when_no_rx_descriptors():
    testbed, nic, peer = make_testbed()
    env = testbed.env

    def flood():
        # NIC not configured by any driver: every frame drops.
        for _ in range(5):
            yield from peer.send(nic.name, "x", 100)

    run(env, flood())
    env.run()
    assert nic.rx_dropped == 5


def test_e1000_head_registers_are_device_owned():
    testbed, nic, peer = make_testbed()
    from repro.net.e1000 import REG_RDH
    with pytest.raises(ValueError):
        nic.mmio_write(nic.mmio_base + REG_RDH, 3)


# -- shared-NIC mediation ------------------------------------------------------------

def make_shared_vmm(testbed, nic):
    node = testbed.node
    mediator = NicMediator(testbed.env, node.machine, nic)
    port = SharedNicPort(mediator)
    vmm = BmcastVmm(testbed.env, node.machine, port, testbed.server_port,
                    image_sectors=testbed.image.total_sectors,
                    policy=FULL_SPEED, extra_mediators=[mediator])
    return vmm, mediator


def boot_vmm(testbed, vmm):
    env = testbed.env

    def scenario():
        yield from testbed.node.machine.power_on()
        yield from testbed.node.machine.firmware.network_boot()
        yield from vmm.boot()

    env.run(until=env.process(scenario()))


def test_guest_traffic_transparent_through_mediator():
    testbed, nic, peer = make_testbed()
    env = testbed.env
    echo_service(env, peer)
    vmm, mediator = make_shared_vmm(testbed, nic)
    boot_vmm(testbed, vmm)
    driver = E1000Driver(testbed.node.machine, nic)

    def proc():
        yield from driver.send("peer", "hello-via-mediator", 200)
        frame = yield from driver.recv()
        return frame.payload

    assert run(env, proc()) == "hello-via-mediator"
    assert mediator.guest_tx_forwarded == 1
    assert mediator.guest_frames_delivered == 1
    # The guest never touched the real device registers.
    assert nic.tdba == mediator._s_tx_address


def test_full_deployment_over_shared_nic():
    """The strongest Section-6 claim: the whole streaming deployment —
    AoE commands, bulk fetches, redirects — runs over the guest's own
    NIC, interleaved with guest traffic through the shadow rings."""
    testbed, nic, peer = make_testbed()
    env = testbed.env
    echo_service(env, peer)
    vmm, mediator = make_shared_vmm(testbed, nic)
    boot_vmm(testbed, vmm)
    guest = GuestOs(testbed.node.machine, testbed.image)
    driver = E1000Driver(testbed.node.machine, nic)
    rtts = []

    def guest_traffic():
        for _ in range(30):
            start = env.now
            yield from driver.send("peer", "ping", 100)
            yield from driver.recv()
            rtts.append(env.now - start)
            yield env.timeout(5e-3)

    def scenario():
        yield from guest.boot()
        yield from guest_traffic()
        yield vmm.copier.done

    env.run(until=env.process(scenario()))
    env.run(until=env.now + 5.0)
    assert vmm.bitmap.complete
    assert testbed.image.verify_deployed(testbed.node.disk.contents,
                                         guest.written)
    assert mediator.vmm_frames_sent > 0
    assert len(rtts) == 30
    # Guest networking stayed functional throughout.
    assert max(rtts) < 50e-3


def test_spurious_interrupts_dismissed_by_guest():
    """VMM traffic interrupts reach the guest (interrupt controllers are
    not virtualized); the guest driver reads a clean virtual ICR and
    ignores them (paper 3.2 / 6)."""
    testbed, nic, peer = make_testbed()
    env = testbed.env
    vmm, mediator = make_shared_vmm(testbed, nic)
    boot_vmm(testbed, vmm)
    driver = E1000Driver(testbed.node.machine, nic)

    def proc():
        yield from driver.start()
        # Pure VMM traffic for a while: every completion interrupt the
        # device raises is irrelevant to the guest.
        yield env.timeout(0.5)

    run(env, proc())
    assert mediator.vmm_frames_sent > 0
    assert mediator.guest_frames_delivered == 0


def test_devirt_hands_nic_back_seamlessly():
    testbed, nic, peer = make_testbed()
    env = testbed.env
    echo_service(env, peer)
    vmm, mediator = make_shared_vmm(testbed, nic)
    boot_vmm(testbed, vmm)
    driver = E1000Driver(testbed.node.machine, nic)

    def before():
        yield from driver.send("peer", "before", 100)
        frame = yield from driver.recv()
        return frame.payload

    assert run(env, before()) == "before"
    env.run(until=vmm.copier.done)
    env.run(until=env.now + 5.0)
    assert vmm.phase == "baremetal"
    assert not mediator.installed
    # The real device now runs the guest's own rings.
    assert nic.tdba == driver._tx_ring_address
    assert nic.rdba == driver._rx_ring_address

    exits_before = testbed.node.machine.total_vm_exits()

    def after():
        yield from driver.send("peer", "after", 100)
        frame = yield from driver.recv()
        return frame.payload

    assert run(env, after()) == "after"
    # Zero exits: the driver talks straight to hardware now.
    assert testbed.node.machine.total_vm_exits() == exits_before
