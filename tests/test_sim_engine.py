"""Unit tests for the discrete-event engine core."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(3.5)

    env.process(proc(env))
    env.run()
    assert env.now == 3.5


def test_timeout_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_process_return_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return 42

    p = env.process(proc(env))
    result = env.run(until=p)
    assert result == 42


def test_processes_interleave_in_time_order():
    env = Environment()
    log = []

    def proc(env, name, delay):
        yield env.timeout(delay)
        log.append((env.now, name))

    env.process(proc(env, "b", 2))
    env.process(proc(env, "a", 1))
    env.process(proc(env, "c", 3))
    env.run()
    assert log == [(1, "a"), (2, "b"), (3, "c")]


def test_simultaneous_events_fifo():
    env = Environment()
    log = []

    def proc(env, name):
        yield env.timeout(1)
        log.append(name)

    for name in ("first", "second", "third"):
        env.process(proc(env, name))
    env.run()
    assert log == ["first", "second", "third"]


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(1)

    env.process(proc(env))
    env.run(until=10.5)
    assert env.now == 10.5


def test_run_until_past_time_rejected():
    env = Environment(initial_time=5.0)
    with pytest.raises(ValueError):
        env.run(until=4.0)


def test_wait_on_another_process():
    env = Environment()

    def child(env):
        yield env.timeout(2)
        return "child-result"

    def parent(env):
        result = yield env.process(child(env))
        return result

    p = env.process(parent(env))
    assert env.run(until=p) == "child-result"


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    log = []

    def waiter(env):
        value = yield gate
        log.append((env.now, value))

    def opener(env):
        yield env.timeout(4)
        gate.succeed("open")

    env.process(waiter(env))
    env.process(opener(env))
    env.run()
    assert log == [(4, "open")]


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()

    def waiter(env):
        try:
            yield gate
        except RuntimeError as error:
            return str(error)

    def failer(env):
        yield env.timeout(1)
        gate.fail(RuntimeError("boom"))

    p = env.process(waiter(env))
    env.process(failer(env))
    assert env.run(until=p) == "boom"


def test_event_double_trigger_rejected():
    env = Environment()
    gate = env.event()
    gate.succeed()
    with pytest.raises(SimulationError):
        gate.succeed()


def test_unhandled_process_failure_propagates():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise ValueError("unhandled")

    env.process(bad(env))
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt as interrupt:
            log.append((env.now, interrupt.cause))

    def interrupter(env, victim):
        yield env.timeout(3)
        victim.interrupt(cause="wake-up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(3, "wake-up")]


def test_interrupt_terminated_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_interrupted_process_can_continue():
    env = Environment()

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt:
            pass
        yield env.timeout(5)
        return env.now

    def interrupter(env, victim):
        yield env.timeout(10)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    assert env.run(until=victim) == 15


def test_all_of_waits_for_every_event():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(5, value="b")
        result = yield env.all_of([t1, t2])
        return (env.now, list(result.values()))

    p = env.process(proc(env))
    assert env.run(until=p) == (5, ["a", "b"])


def test_any_of_fires_on_first():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(5, value="slow")
        result = yield env.any_of([t1, t2])
        return (env.now, "fast" in list(result.values()))

    p = env.process(proc(env))
    assert env.run(until=p) == (1, True)


def test_condition_operators():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1)
        t2 = env.timeout(2)
        yield t1 | t2
        first = env.now
        t3 = env.timeout(1)
        t4 = env.timeout(2)
        yield t3 & t4
        return (first, env.now)

    p = env.process(proc(env))
    assert env.run(until=p) == (1, 3)


def test_all_of_empty_fires_immediately():
    env = Environment()

    def proc(env):
        yield env.all_of([])
        return env.now

    p = env.process(proc(env))
    assert env.run(until=p) == 0


def test_yield_non_event_is_error():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run()


def test_event_value_before_trigger_rejected():
    env = Environment()
    event = env.event()
    with pytest.raises(SimulationError):
        _ = event.value


def test_process_is_alive_lifecycle():
    env = Environment()

    def proc(env):
        yield env.timeout(2)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_run_until_already_processed_event():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return "x"

    p = env.process(proc(env))
    env.run()
    # Running again until the same (already processed) event returns its value.
    assert env.run(until=p) == "x"
