"""Additional edge-case coverage for the simulation engine."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


def test_all_of_fails_fast_on_member_failure():
    env = Environment()
    gate = env.event()

    def proc(env):
        t = env.timeout(100)
        try:
            yield env.all_of([gate, t])
        except RuntimeError as error:
            return (env.now, str(error))

    def failer(env):
        yield env.timeout(1)
        gate.fail(RuntimeError("member failed"))

    p = env.process(proc(env))
    env.process(failer(env))
    assert env.run(until=p) == (1, "member failed")


def test_any_of_failure_propagates():
    env = Environment()
    gate = env.event()

    def proc(env):
        try:
            yield env.any_of([gate, env.timeout(100)])
        except ValueError:
            return "caught"

    def failer(env):
        yield env.timeout(1)
        gate.fail(ValueError("boom"))

    p = env.process(proc(env))
    env.process(failer(env))
    assert env.run(until=p) == "caught"


def test_condition_value_mapping_semantics():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(2, value="b")
        result = yield env.all_of([t1, t2])
        assert t1 in result
        assert result[t1] == "a"
        assert dict(result.items()) == {t1: "a", t2: "b"}
        assert list(result.keys()) == [t1, t2]
        with pytest.raises(KeyError):
            _ = result[env.event()]
        return True

    assert env.run(until=env.process(proc(env)))


def test_nested_conditions_flatten_values():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1, value="x")
        t2 = env.timeout(2, value="y")
        t3 = env.timeout(3, value="z")
        result = yield (t1 & t2) & t3
        return list(result.values())

    assert env.run(until=env.process(proc(env))) == ["x", "y", "z"]


def test_condition_mixed_environments_rejected():
    env_a = Environment()
    env_b = Environment()
    t_a = env_a.timeout(1)
    t_b = env_b.timeout(1)
    with pytest.raises(ValueError):
        AllOf(env_a, [t_a, t_b])


def test_event_trigger_mirrors_outcome():
    env = Environment()
    source = env.event()
    mirror = env.event()
    source.succeed("payload")
    mirror.trigger(source)
    assert mirror.triggered and mirror.ok
    assert mirror.value == "payload"

    failed_source = env.event()
    failed_mirror = env.event()
    error = RuntimeError("no")
    failed_source.fail(error)
    failed_mirror.trigger(failed_source)
    failed_source.defused = True
    failed_mirror.defused = True
    assert not failed_mirror.ok
    assert failed_mirror.value is error
    env.run()


def test_fail_with_non_exception_rejected():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_interrupt_detaches_from_stale_target():
    """After an interrupt, the old timeout firing must not resume the
    process a second time."""
    env = Environment()
    wakeups = []

    def sleeper(env):
        try:
            yield env.timeout(10)
        except Interrupt:
            wakeups.append(("interrupt", env.now))
        yield env.timeout(100)
        wakeups.append(("done", env.now))

    def interrupter(env, victim):
        yield env.timeout(2)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert wakeups == [("interrupt", 2), ("done", 102)]


def test_process_failure_value_available_after_catch():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise KeyError("broken")

    def parent(env):
        child = env.process(bad(env))
        try:
            yield child
        except KeyError:
            return child

    child = env.run(until=env.process(parent(env)))
    assert child.triggered
    assert not child.ok
    assert isinstance(child.value, KeyError)


def test_any_of_with_already_processed_event():
    env = Environment()

    def proc(env):
        early = env.timeout(1, value="early")
        yield env.timeout(5)  # `early` is processed by now
        result = yield env.any_of([early, env.timeout(50)])
        return "early" in list(result.values())

    assert env.run(until=env.process(proc(env))) is True


def test_peek_and_step_bookkeeping():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(3.0)
    assert env.peek() == 3.0
    env.step()
    assert env.now == 3.0


def test_repr_smoke():
    env = Environment()
    event = env.event()
    assert "pending" in repr(event)
    event.succeed()
    assert "ok" in repr(event)
    assert "Environment" in repr(env)

    def noop(env):
        yield env.timeout(1)

    process = env.process(noop(env), name="my-proc")
    assert "my-proc" in repr(process)
    env.run()


def test_run_until_event_never_fires_raises():
    env = Environment()
    orphan = env.event()

    def proc(env):
        yield env.timeout(1)

    env.process(proc(env))
    with pytest.raises(SimulationError):
        env.run(until=orphan)
