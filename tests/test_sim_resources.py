"""Unit tests for Resource / Store / PriorityStore."""

import pytest

from repro.sim import Environment, PriorityStore, Resource, Store


# -- Resource ---------------------------------------------------------------

def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_grants_up_to_capacity():
    env = Environment()
    resource = Resource(env, capacity=2)
    log = []

    def user(env, name, hold):
        with resource.request() as req:
            yield req
            log.append(("acquire", name, env.now))
            yield env.timeout(hold)
        log.append(("release", name, env.now))

    env.process(user(env, "a", 5))
    env.process(user(env, "b", 5))
    env.process(user(env, "c", 5))
    env.run()
    acquires = [(name, t) for kind, name, t in log if kind == "acquire"]
    assert acquires == [("a", 0), ("b", 0), ("c", 5)]


def test_resource_count_tracks_users():
    env = Environment()
    resource = Resource(env, capacity=1)

    def user(env):
        with resource.request() as req:
            yield req
            assert resource.count == 1
            yield env.timeout(1)

    env.process(user(env))
    env.run()
    assert resource.count == 0


def test_resource_fifo_queueing():
    env = Environment()
    resource = Resource(env, capacity=1)
    order = []

    def user(env, name):
        with resource.request() as req:
            yield req
            order.append(name)
            yield env.timeout(1)

    for name in "abcd":
        env.process(user(env, name))
    env.run()
    assert order == list("abcd")


def test_resource_release_unqueued_request_noop():
    env = Environment()
    resource = Resource(env, capacity=1)

    def holder(env):
        req = resource.request()
        yield req
        resource.release(req)
        resource.release(req)  # second release is a no-op

    env.process(holder(env))
    env.run()
    assert resource.count == 0


# -- Store ------------------------------------------------------------------

def test_store_put_then_get():
    env = Environment()
    store = Store(env)

    def producer(env):
        yield store.put("item")

    def consumer(env):
        item = yield store.get()
        return item

    env.process(producer(env))
    p = env.process(consumer(env))
    assert env.run(until=p) == "item"


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    log = []

    def consumer(env):
        item = yield store.get()
        log.append((env.now, item))

    def producer(env):
        yield env.timeout(7)
        yield store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert log == [(7, "late")]


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        for item in (1, 2, 3):
            yield store.put(item)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == [1, 2, 3]


def test_store_capacity_blocks_putter():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer(env):
        yield store.put("a")
        log.append(("put-a", env.now))
        yield store.put("b")
        log.append(("put-b", env.now))

    def consumer(env):
        yield env.timeout(5)
        item = yield store.get()
        log.append((f"got-{item}", env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert ("put-a", 0) in log
    assert ("put-b", 5) in log


def test_store_try_get_nonblocking():
    env = Environment()
    store = Store(env)
    assert store.try_get() is None

    def producer(env):
        yield store.put("x")

    env.process(producer(env))
    env.run()
    assert store.try_get() == "x"
    assert store.try_get() is None


def test_store_peek_does_not_remove():
    env = Environment()
    store = Store(env)

    def producer(env):
        yield store.put("x")

    env.process(producer(env))
    env.run()
    assert store.peek() == "x"
    assert len(store) == 1


def test_store_multiple_getters_fifo():
    env = Environment()
    store = Store(env)
    results = []

    def consumer(env, name):
        item = yield store.get()
        results.append((name, item))

    def producer(env):
        yield env.timeout(1)
        yield store.put("first")
        yield store.put("second")

    env.process(consumer(env, "c1"))
    env.process(consumer(env, "c2"))
    env.process(producer(env))
    env.run()
    assert results == [("c1", "first"), ("c2", "second")]


# -- PriorityStore ------------------------------------------------------------

def test_priority_store_orders_by_priority():
    env = Environment()
    store = PriorityStore(env)
    received = []

    def producer(env):
        yield store.put_with_priority(3, "low")
        yield store.put_with_priority(1, "high")
        yield store.put_with_priority(2, "mid")

    def consumer(env):
        # Start after all puts so priority ordering (not arrival order)
        # decides what we receive.
        yield env.timeout(1)
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == ["high", "mid", "low"]


def test_priority_store_equal_priority_fifo():
    env = Environment()
    store = PriorityStore(env)
    received = []

    def producer(env):
        for name in ("a", "b", "c"):
            yield store.put_with_priority(1, name)

    def consumer(env):
        for _ in range(3):
            received.append((yield store.get()))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == ["a", "b", "c"]


def test_priority_store_try_get_and_peek():
    env = Environment()
    store = PriorityStore(env)

    def producer(env):
        yield store.put_with_priority(2, "b")
        yield store.put_with_priority(1, "a")

    env.process(producer(env))
    env.run()
    assert store.peek() == "a"
    assert store.try_get() == "a"
    assert store.try_get() == "b"
    assert store.try_get() is None
