"""simcheck: each pass has a seeded violation and a clean twin.

Fixture trees are written under ``tmp_path/repro/...`` so module
names resolve the same way they do for the real package.
"""

import json
import textwrap

import pytest

from repro.analysis.simcheck.engine import (
    CATALOG,
    main,
    run_check,
)
from repro.analysis.simcheck.model import build_model
from repro.analysis.simcheck.sarif import sarif_document

SRC = __file__.rsplit("/tests/", 1)[0] + "/src/repro"
BASELINE = __file__.rsplit("/tests/", 1)[0] + "/simcheck.baseline.json"


def write_tree(tmp_path, files):
    """Write ``{relative path: source}`` under tmp_path/repro.

    Bare filenames land in the ranked ``sim`` package so fixtures do
    not trip CHECK051 (unranked package) incidentally.
    """
    root = tmp_path / "repro"
    for relative, source in files.items():
        if "/" not in relative:
            relative = "sim/" + relative
        target = root / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def check_tree(tmp_path, files):
    root = write_tree(tmp_path, files)
    return run_check([str(root)])


def codes_of(report):
    return [finding.rule for finding in report.findings]


# -- CHECK001: determinism taint ---------------------------------------------

SET_ITER_SPAWN = """
    class Fleet:
        def __init__(self, env):
            self.env = env
            self.pending = set()

        def run(self):
            for node in self.pending:
                self.env.process(self.boot(node))
            yield self.env.timeout(1)

        def boot(self, node):
            yield self.env.timeout(node)

    def start(env):
        env.process(Fleet(env).run())
"""


def test_set_iteration_reaching_scheduler_flagged(tmp_path):
    report = check_tree(tmp_path, {"fleet.py": SET_ITER_SPAWN})
    assert "CHECK001" in codes_of(report)


def test_sorted_set_iteration_is_clean(tmp_path):
    report = check_tree(tmp_path, {"fleet.py": SET_ITER_SPAWN.replace(
        "for node in self.pending:",
        "for node in sorted(self.pending):")})
    assert "CHECK001" not in codes_of(report)


def test_set_iteration_away_from_scheduler_is_clean(tmp_path):
    report = check_tree(tmp_path, {"stats.py": """
        def histogram(values: set):
            counts = {}
            for value in values:
                counts[value] = counts.get(value, 0) + 1
            return counts
    """})
    assert "CHECK001" not in codes_of(report)


def test_membership_reduction_over_set_is_clean(tmp_path):
    report = check_tree(tmp_path, {"pool.py": """
        def busy_count(env, claimed: set):
            env.schedule(None)
            return len(claimed)
    """})
    assert codes_of(report) == []


def test_set_iteration_seen_through_call_graph(tmp_path):
    # The iterating helper does not schedule itself; it is tainted
    # because its caller is a spawned process.
    report = check_tree(tmp_path, {"relay.py": """
        class Relay:
            def __init__(self, env):
                self.env = env
                self.peers = set()

            def fanout(self):
                for peer in self.peers:
                    self.notify(peer)

            def notify(self, peer):
                self.env.schedule(peer)

            def run(self):
                self.fanout()
                yield self.env.timeout(1)

        def start(env):
            env.process(Relay(env).run())
    """})
    assert "CHECK001" in codes_of(report)


def test_cross_class_attr_not_a_set_everywhere_is_clean(tmp_path):
    # ``items`` is a set in one class and a list in another, so the
    # whole-program attribute table leaves it untyped.
    report = check_tree(tmp_path, {"mixed.py": """
        class A:
            def __init__(self):
                self.items = set()

        class B:
            def __init__(self, env):
                self.env = env
                self.items = []

            def run(self):
                for item in self.items:
                    self.env.schedule(item)
                yield self.env.timeout(1)

        def start(env):
            env.process(B(env).run())
    """})
    assert "CHECK001" not in codes_of(report)


# -- CHECK010/011/012: process discipline ------------------------------------

def test_discarded_generator_flagged(tmp_path):
    report = check_tree(tmp_path, {"copier.py": """
        class Copier:
            def __init__(self, env):
                self.env = env

            def run(self):
                self.copy_loop()
                yield self.env.timeout(1)

            def copy_loop(self):
                yield self.env.timeout(2)

        def start(env):
            env.process(Copier(env).run())
    """})
    assert "CHECK010" in codes_of(report)


def test_discarded_timeout_event_flagged(tmp_path):
    report = check_tree(tmp_path, {"waiter.py": """
        def run(env):
            env.timeout(5)
            yield env.timeout(1)

        def start(env):
            env.process(run(env))
    """})
    assert "CHECK010" in codes_of(report)


def test_yield_from_generator_is_clean(tmp_path):
    report = check_tree(tmp_path, {"copier.py": """
        class Copier:
            def __init__(self, env):
                self.env = env

            def run(self):
                yield from self.copy_loop()

            def copy_loop(self):
                yield self.env.timeout(2)

        def start(env):
            env.process(Copier(env).run())
    """})
    assert "CHECK010" not in codes_of(report)


def test_constant_yield_in_process_flagged(tmp_path):
    report = check_tree(tmp_path, {"bad.py": """
        def run(env):
            yield 5

        def start(env):
            env.process(run(env))
    """})
    assert "CHECK011" in codes_of(report)


def test_constant_yield_outside_processes_is_clean(tmp_path):
    # A plain generator never spawned as a process may yield anything.
    report = check_tree(tmp_path, {"gen.py": """
        def naturals():
            yield 1
            yield 2
    """})
    assert "CHECK011" not in codes_of(report)


def test_swallowed_interrupt_flagged(tmp_path):
    report = check_tree(tmp_path, {"worker.py": """
        def run(env):
            while True:
                try:
                    yield env.timeout(1)
                except Exception:
                    pass

        def start(env):
            env.process(run(env))
    """})
    assert "CHECK012" in codes_of(report)


# -- CHECK020: shared-state race candidates -----------------------------------

SHARED_WRITE = """
    class Node:
        def __init__(self, env):
            self.env = env
            self.state = "idle"

        def deploy(self):
            self.state = "deploying"
            yield self.env.timeout(1)

        def reclaim(self):
            self.state = "scrubbing"
            yield self.env.timeout(1)

    def start(env):
        node = Node(env)
        env.process(node.deploy())
        env.process(node.reclaim())
"""


def test_shared_write_without_claim_flagged(tmp_path):
    report = check_tree(tmp_path, {"node.py": SHARED_WRITE})
    assert "CHECK020" in codes_of(report)


def test_shared_write_with_claim_protocol_is_clean(tmp_path):
    source = SHARED_WRITE.replace(
        'self.state = "deploying"',
        'self.bitmap.try_claim(0)\n            '
        'self.state = "deploying"')
    report = check_tree(tmp_path, {"node.py": source})
    assert "CHECK020" not in codes_of(report)


def test_single_writer_is_clean(tmp_path):
    report = check_tree(tmp_path, {"node.py": """
        class Node:
            def __init__(self, env):
                self.env = env
                self.state = "idle"

            def deploy(self):
                self.state = "deploying"
                yield self.env.timeout(1)

        def start(env):
            env.process(Node(env).deploy())
    """})
    assert "CHECK020" not in codes_of(report)


# -- CHECK030-034: FSM extraction and spec checking ---------------------------

FSM_MODULE = """
    A = "a"
    B = "b"
    C = "c"

    TRANSITIONS = {
        A: (B,),
        B: (C,),
        C: (A,),
    }

    SIMCHECK_FSM = {
        "name": "demo",
        "initial": A,
        "states": (A, B, C),
        "transitions": {
            A: (B,),
            B: (C,),
            C: (A,),
        },
        "extract": {"kind": "transitions-literal",
                    "source": "TRANSITIONS"},
    }
"""


def test_matching_fsm_is_clean_and_fully_covered(tmp_path):
    report = check_tree(tmp_path, {"proto.py": FSM_MODULE})
    assert codes_of(report) == []
    assert report.fsm_reports[0]["covered"] == 3
    assert report.fsm_reports[0]["total"] == 3
    assert report.fsm_fully_covered


def test_missing_implementation_edge_flagged(tmp_path):
    source = FSM_MODULE.replace("B: (C,),\n        C: (A,),\n    }\n\n    SIM",
                                "B: (C,),\n        C: (),\n    }\n\n    SIM",
                                1)
    report = check_tree(tmp_path, {"proto.py": source})
    assert "CHECK030" in codes_of(report)
    assert not report.fsm_fully_covered


def test_undeclared_implementation_edge_flagged(tmp_path):
    source = FSM_MODULE.replace("A: (B,),", "A: (B, C),", 1)
    report = check_tree(tmp_path, {"proto.py": source})
    assert "CHECK031" in codes_of(report)


def test_unreachable_state_flagged(tmp_path):
    report = check_tree(tmp_path, {"proto.py": """
        SIMCHECK_FSM = {
            "name": "demo",
            "initial": "a",
            "states": ("a", "b"),
            "transitions": {"a": ("a",)},
            "extract": {"kind": "transitions-literal",
                        "source": "TRANSITIONS"},
        }

        TRANSITIONS = {"a": ("a",)}
    """})
    assert "CHECK032" in codes_of(report)


def test_dead_end_state_must_be_terminal(tmp_path):
    report = check_tree(tmp_path, {"proto.py": """
        SIMCHECK_FSM = {
            "name": "demo",
            "initial": "a",
            "states": ("a", "b"),
            "transitions": {"a": ("b",), "b": ()},
            "extract": {"kind": "transitions-literal",
                        "source": "TRANSITIONS"},
        }

        TRANSITIONS = {"a": ("b",), "b": ()}
    """})
    assert "CHECK032" in codes_of(report)


def test_missing_recovery_edge_flagged(tmp_path):
    report = check_tree(tmp_path, {"proto.py": """
        SIMCHECK_FSM = {
            "name": "demo",
            "initial": "free",
            "recovery": "failed",
            "states": ("free", "busy", "failed"),
            "transitions": {
                "free": ("busy",),
                "busy": ("free",),
                "failed": ("free",),
            },
            "extract": {"kind": "transitions-literal",
                        "source": "TRANSITIONS"},
        }

        TRANSITIONS = {
            "free": ("busy",),
            "busy": ("free",),
            "failed": ("free",),
        }
    """})
    assert "CHECK033" in codes_of(report)


def test_malformed_spec_flagged(tmp_path):
    report = check_tree(tmp_path, {"proto.py": """
        SIMCHECK_FSM = {
            "name": "demo",
            "initial": "a",
        }
    """})
    assert "CHECK034" in codes_of(report)


def test_claim_methods_extractor(tmp_path):
    report = check_tree(tmp_path, {"bitmap.py": """
        SIMCHECK_FSM = {
            "name": "claim",
            "initial": "empty",
            "states": ("empty", "claimed", "filled"),
            "transitions": {
                "empty": ("claimed", "filled"),
                "claimed": ("filled", "empty"),
                "filled": (),
            },
            "terminal": ("filled",),
            "extract": {
                "kind": "claim-methods",
                "class": "Bitmap",
                "claimed": "_claimed",
                "filled": "_filled",
                "states": ("empty", "claimed", "filled"),
            },
        }

        class Bitmap:
            def try_claim(self, block):
                self._claimed.add(block)

            def release_claim(self, block):
                self._claimed.discard(block)

            def commit_fill(self, block):
                if block not in self._claimed:
                    raise ValueError(block)
                self._claimed.discard(block)
                self._filled.set_range(block, 1, True)

            def record_guest_write(self, block):
                self._claimed.discard(block)
                self._filled.set_range(block, 1, True)
    """})
    assert codes_of(report) == []
    assert report.fsm_reports[0]["covered"] == 4
    assert report.fsm_fully_covered


# -- CHECK050/051/052: import graph -------------------------------------------

def test_import_cycle_flagged(tmp_path):
    report = check_tree(tmp_path, {
        "sim/alpha.py": "import repro.sim.beta\n",
        "sim/beta.py": "import repro.sim.alpha\n",
    })
    assert "CHECK050" in codes_of(report)


def test_deferred_import_breaks_the_cycle(tmp_path):
    report = check_tree(tmp_path, {
        "sim/alpha.py": "import repro.sim.beta\n",
        "sim/beta.py": ("def late():\n"
                        "    import repro.sim.alpha\n"
                        "    return repro.sim.alpha\n"),
    })
    assert "CHECK050" not in codes_of(report)


def test_layering_violation_flagged(tmp_path):
    # sim (rank 1) depending on ctl (rank 8) inverts the layering.
    report = check_tree(tmp_path, {
        "sim/clock.py": "import repro.ctl.widget\n",
        "ctl/widget.py": "VALUE = 1\n",
    })
    assert "CHECK052" in codes_of(report)


def test_downward_dependency_is_clean(tmp_path):
    report = check_tree(tmp_path, {
        "ctl/widget.py": "import repro.sim.clock\n",
        "sim/clock.py": "VALUE = 1\n",
    })
    assert "CHECK052" not in codes_of(report)


def test_unranked_package_flagged(tmp_path):
    report = check_tree(tmp_path, {"mystery/thing.py": "VALUE = 1\n"})
    assert "CHECK051" in codes_of(report)


# -- suppressions and baseline ------------------------------------------------

def test_simcheck_suppression_comment(tmp_path):
    report = check_tree(tmp_path, {"bad.py": """
        def run(env):
            yield 5  # simcheck: ignore[CHECK011] -- fixture
        def start(env):
            env.process(run(env))
    """})
    assert "CHECK011" not in codes_of(report)
    assert report.suppressed == 1


def test_simcheck_ignore_next_line(tmp_path):
    report = check_tree(tmp_path, {"bad.py": """
        def run(env):
            # simcheck: ignore-next-line[CHECK011]
            yield 5
        def start(env):
            env.process(run(env))
    """})
    assert "CHECK011" not in codes_of(report)


def test_baseline_round_trip(tmp_path):
    files = {"bad.py": """
        def run(env):
            yield 5

        def start(env):
            env.process(run(env))
    """}
    root = write_tree(tmp_path, files)
    baseline = tmp_path / "baseline.json"

    # 1. Finding is active without a baseline.
    report = run_check([str(root)], baseline_path=str(baseline))
    assert codes_of(report) == ["CHECK011"]

    # 2. --write-baseline grandfathers it.
    report = run_check([str(root)], baseline_path=str(baseline),
                       write_baseline=True)
    assert report.findings == []
    assert [f.rule for f in report.baselined] == ["CHECK011"]

    # 3. A hand-edited justification survives rewrites.
    payload = json.loads(baseline.read_text())
    payload["findings"][0]["justification"] = "known fixture"
    baseline.write_text(json.dumps(payload))
    report = run_check([str(root)], baseline_path=str(baseline),
                       write_baseline=True)
    payload = json.loads(baseline.read_text())
    assert payload["findings"][0]["justification"] == "known fixture"

    # 4. Fixing the source strands the entry; it is reported stale.
    (root / "sim" / "bad.py").write_text(textwrap.dedent("""
        def run(env):
            yield env.timeout(1)

        def start(env):
            env.process(run(env))
    """), encoding="utf-8")
    report = run_check([str(root)], baseline_path=str(baseline))
    assert report.findings == []
    assert [entry.code for entry in report.stale_baseline] \
        == ["CHECK011"]

    # 5. --write-baseline expires it.
    report = run_check([str(root)], baseline_path=str(baseline),
                       write_baseline=True)
    assert json.loads(baseline.read_text())["findings"] == []


def test_baseline_is_line_number_independent(tmp_path):
    files = {"bad.py": "def run(env):\n    yield 5\n\n"
                       "def start(env):\n    env.process(run(env))\n"}
    root = write_tree(tmp_path, files)
    baseline = tmp_path / "baseline.json"
    run_check([str(root)], baseline_path=str(baseline),
              write_baseline=True)
    # Insert lines above the finding; the context line still matches.
    (root / "sim" / "bad.py").write_text(
        "X = 1\nY = 2\n\ndef run(env):\n    yield 5\n\n"
        "def start(env):\n    env.process(run(env))\n",
        encoding="utf-8")
    report = run_check([str(root)], baseline_path=str(baseline))
    assert report.findings == []
    assert len(report.baselined) == 1


# -- incremental cache --------------------------------------------------------

def test_cache_reuses_summaries_and_invalidates_on_edit(tmp_path):
    root = write_tree(tmp_path, {"bad.py": """
        def run(env):
            yield 5

        def start(env):
            env.process(run(env))
    """})
    cache = tmp_path / "cache.json"
    first = run_check([str(root)], cache_path=str(cache))
    assert first.cached_modules == 0
    second = run_check([str(root)], cache_path=str(cache))
    assert second.cached_modules == second.modules == 1
    assert codes_of(first) == codes_of(second) == ["CHECK011"]
    # An edit invalidates exactly that file.
    (root / "sim" / "bad.py").write_text(textwrap.dedent("""
        def run(env):
            yield env.timeout(1)

        def start(env):
            env.process(run(env))
    """), encoding="utf-8")
    third = run_check([str(root)], cache_path=str(cache))
    assert third.cached_modules == 0
    assert codes_of(third) == []


def test_cache_preserves_fsm_constants(tmp_path):
    root = write_tree(tmp_path, {"proto.py": FSM_MODULE})
    cache = tmp_path / "cache.json"
    run_check([str(root)], cache_path=str(cache))
    cached = run_check([str(root)], cache_path=str(cache))
    assert cached.cached_modules == 1
    assert cached.fsm_reports[0]["covered"] == 3


# -- CLI ----------------------------------------------------------------------

def test_cli_exit_zero_on_clean_tree(tmp_path):
    root = write_tree(tmp_path, {"ok.py": "VALUE = 1\n"})
    assert main(["--no-baseline", "--no-cache", str(root)]) == 0


def test_cli_exit_one_on_error_finding(tmp_path):
    root = write_tree(tmp_path, {"bad.py": (
        "def run(env):\n    yield 5\n\n"
        "def start(env):\n    env.process(run(env))\n")})
    assert main(["--no-baseline", "--no-cache", str(root)]) == 1


def test_cli_exit_two_on_missing_path(tmp_path):
    missing = tmp_path / "nope.py"
    assert main(["--no-baseline", "--no-cache", str(missing)]) == 2


def test_cli_warnings_pass_unless_strict(tmp_path):
    root = write_tree(tmp_path, {"node.py": SHARED_WRITE})
    assert main(["--no-baseline", "--no-cache", str(root)]) == 0
    assert main(["--no-baseline", "--no-cache", "--strict",
                 str(root)]) == 1


def test_cli_list_checks(capsys):
    assert main(["--list-checks"]) == 0
    out = capsys.readouterr().out
    for code in CATALOG:
        assert code in out


def test_repro_cli_check_subcommand(tmp_path):
    from repro.cli import main as repro_main

    root = write_tree(tmp_path, {"ok.py": "VALUE = 1\n"})
    assert repro_main(["check", "--no-baseline", "--no-cache",
                       str(root)]) == 0
    bad = write_tree(tmp_path / "b", {"bad.py": (
        "def run(env):\n    yield 5\n\n"
        "def start(env):\n    env.process(run(env))\n")})
    assert repro_main(["check", "--no-baseline", "--no-cache",
                       str(bad)]) == 1


def test_repro_cli_lint_exit_codes(tmp_path):
    from repro.cli import main as repro_main

    clean = tmp_path / "clean.py"
    clean.write_text("VALUE = 1\n", encoding="utf-8")
    assert repro_main(["lint", str(clean)]) == 0
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\n\ndef now():\n"
                     "    return time.time()\n", encoding="utf-8")
    assert repro_main(["lint", str(dirty)]) == 1


def test_syntax_error_becomes_check000(tmp_path):
    root = write_tree(tmp_path, {"broken.py": "def oops(:\n"})
    report = run_check([str(root)])
    assert codes_of(report) == ["CHECK000"]


# -- SARIF --------------------------------------------------------------------

def test_sarif_document_structure(tmp_path):
    root = write_tree(tmp_path, {"bad.py": (
        "def run(env):\n    yield 5\n\n"
        "def start(env):\n    env.process(run(env))\n")})
    report = run_check([str(root)])
    document = sarif_document(report.findings, CATALOG, "1.0.0")
    assert document["version"] == "2.1.0"
    assert document["$schema"].endswith("sarif-2.1.0.json")
    run = document["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "simcheck"
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert set(rule_ids) == set(CATALOG)
    assert len(run["results"]) == 1
    result = run["results"][0]
    assert result["ruleId"] == "CHECK011"
    assert driver["rules"][result["ruleIndex"]]["id"] == "CHECK011"
    assert result["level"] == "error"
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] >= 1
    assert region["startColumn"] >= 1


def test_sarif_written_by_cli(tmp_path):
    root = write_tree(tmp_path, {"bad.py": (
        "def run(env):\n    yield 5\n\n"
        "def start(env):\n    env.process(run(env))\n")})
    out = tmp_path / "findings.sarif"
    assert main(["--no-baseline", "--no-cache",
                 "--sarif", str(out), str(root)]) == 1
    document = json.loads(out.read_text(encoding="utf-8"))
    assert document["runs"][0]["results"][0]["ruleId"] == "CHECK011"


# -- the real tree ------------------------------------------------------------

def test_real_tree_has_no_errors():
    report = run_check([SRC], baseline_path=BASELINE)
    assert report.errors == []
    # Everything surfaced on the seed tree is either fixed or carries
    # a baseline justification; nothing new may accumulate silently.
    assert report.findings == []
    assert report.stale_baseline == []


def test_real_tree_fsms_fully_covered():
    report = run_check([SRC], baseline_path=BASELINE)
    names = {r["name"]: r for r in report.fsm_reports}
    assert set(names) == {"node-lifecycle", "block-claim"}
    for fsm in names.values():
        assert fsm["covered"] == fsm["total"] > 0
    assert report.fsm_fully_covered


def test_real_tree_process_closure_nonempty():
    model = build_model([SRC])
    assert len(model.process_functions) > 10
    assert all(model.functions[q].is_generator
               for q in model.process_functions)


def test_catalog_covers_every_emitted_code():
    report = run_check([SRC], baseline_path=None)
    for finding in report.findings + report.baselined:
        assert finding.rule in CATALOG


def test_fsm_specs_detect_drift(tmp_path):
    # Editing the real lifecycle TRANSITIONS without updating the spec
    # must fail the check: copy the module, drop an edge.
    source = open(SRC + "/ctl/lifecycle.py", encoding="utf-8").read()
    mutated = source.replace("FAILED: (SCRUBBING,),", "FAILED: (),", 1)
    assert mutated != source
    root = tmp_path / "repro" / "ctl"
    root.mkdir(parents=True)
    (root / "lifecycle.py").write_text(mutated, encoding="utf-8")
    report = run_check([str(tmp_path / "repro")])
    assert "CHECK030" in codes_of(report)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
