"""Tests for IDE and AHCI controller models driven by real guest drivers."""

import pytest

from repro.guest.driver_ahci import AhciDriver
from repro.guest.driver_ide import IdeDriver
from repro.hw.machine import Machine, MachineSpec
from repro.sim import Environment
from repro.storage import ide
from repro.storage.ahci import AhciController
from repro.storage.blockdev import BlockOp
from repro.storage.disk import Disk
from repro.storage.ide import IdeController, Taskfile, decode_request


def make_ide():
    env = Environment()
    machine = Machine(env, MachineSpec(disk_controller="ide"))
    disk = Disk(env)
    controller = IdeController(env, disk, machine)
    driver = IdeDriver(machine)
    return env, machine, disk, controller, driver


def make_ahci():
    env = Environment()
    machine = Machine(env, MachineSpec(disk_controller="ahci"))
    disk = Disk(env)
    controller = AhciController(env, disk, machine)
    driver = AhciDriver(machine)
    return env, machine, disk, controller, driver


def run(env, generator):
    return env.run(until=env.process(generator))


# -- taskfile decode ----------------------------------------------------------

def test_taskfile_lba28_decode():
    taskfile = Taskfile()
    taskfile.load(lba=0x1234567, sector_count=16, ext=False)
    assert taskfile.decode_lba(ext=False) == 0x1234567
    assert taskfile.decode_sector_count(ext=False) == 16


def test_taskfile_lba28_count_zero_means_256():
    taskfile = Taskfile()
    taskfile.load(lba=0, sector_count=256, ext=False)
    assert taskfile.decode_sector_count(ext=False) == 256


def test_taskfile_lba48_decode():
    taskfile = Taskfile()
    taskfile.load(lba=0x123456789AB, sector_count=2048, ext=True)
    assert taskfile.decode_lba(ext=True) == 0x123456789AB
    assert taskfile.decode_sector_count(ext=True) == 2048


def test_taskfile_lba48_count_zero_means_65536():
    taskfile = Taskfile()
    taskfile.load(lba=0, sector_count=65536, ext=True)
    assert taskfile.decode_sector_count(ext=True) == 65536


def test_taskfile_range_validation():
    taskfile = Taskfile()
    with pytest.raises(ValueError):
        taskfile.load(lba=1 << 28, sector_count=1, ext=False)
    with pytest.raises(ValueError):
        taskfile.load(lba=0, sector_count=257, ext=False)
    with pytest.raises(ValueError):
        taskfile.load(lba=0, sector_count=0, ext=True)


def test_decode_request_read_and_write():
    taskfile = Taskfile()
    taskfile.load(lba=100, sector_count=8, ext=True)
    request = decode_request(taskfile, ide.CMD_READ_DMA_EXT)
    assert request.op is BlockOp.READ
    assert request.lba == 100
    assert request.sector_count == 8
    request = decode_request(taskfile, ide.CMD_WRITE_DMA_EXT)
    assert request.op is BlockOp.WRITE


def test_decode_request_non_dma_returns_none():
    taskfile = Taskfile()
    assert decode_request(taskfile, ide.CMD_IDENTIFY) is None


# -- IDE end-to-end --------------------------------------------------------------

def test_ide_write_read_roundtrip():
    env, machine, disk, controller, driver = make_ide()

    def proc():
        yield from driver.write(500, 64, token="data-v1")
        buffer = yield from driver.read(500, 64)
        return buffer.runs

    runs = run(env, proc())
    assert runs == [(500, 564, "data-v1")]
    assert controller.commands_executed == 2
    assert controller.interrupts_raised == 2


def test_ide_read_empty_disk_returns_gap():
    env, machine, disk, controller, driver = make_ide()

    def proc():
        buffer = yield from driver.read(0, 8)
        return buffer.runs

    assert run(env, proc()) == [(0, 8, None)]


def test_ide_large_transfer_split_across_commands():
    env, machine, disk, controller, driver = make_ide()
    sectors = 65536 + 1000

    def proc():
        yield from driver.write(0, sectors, token="big")
        buffer = yield from driver.read(0, sectors)
        return buffer.runs

    runs = run(env, proc())
    assert runs == [(0, sectors, "big")]
    assert controller.commands_executed == 4  # 2 writes + 2 reads


def test_ide_flush_and_identify():
    env, machine, disk, controller, driver = make_ide()

    def proc():
        yield from driver.identify()
        yield from driver.write(0, 1, token="x")
        yield from driver.flush()

    run(env, proc())
    assert controller.commands_executed == 3


def test_ide_unknown_command_sets_error():
    env, machine, disk, controller, driver = make_ide()
    controller.pio_write(ide.REG_COMMAND, 0xFF)
    assert controller.status & ide.STATUS_ERR


def test_ide_sequential_reads_have_disk_timing():
    env, machine, disk, controller, driver = make_ide()

    def proc():
        yield from driver.write(0, 2048, token="x")
        start = env.now
        yield from driver.read(0, 2048)
        return env.now - start

    duration = run(env, proc())
    # 1 MB at ~116 MB/s plus overheads: between 5 ms and 50 ms.
    assert 5e-3 < duration < 50e-3


def test_ide_latency_metrics():
    env, machine, disk, controller, driver = make_ide()

    def proc():
        for _ in range(5):
            yield from driver.read(1000, 8)

    run(env, proc())
    assert driver.requests_completed == 5
    assert driver.mean_latency > 0


# -- AHCI end-to-end ---------------------------------------------------------------

def test_ahci_write_read_roundtrip():
    env, machine, disk, controller, driver = make_ahci()

    def proc():
        yield from driver.write(123, 16, token="ahci-data")
        buffer = yield from driver.read(123, 16)
        return buffer.runs

    runs = run(env, proc())
    assert runs == [(123, 139, "ahci-data")]
    assert controller.commands_executed == 2


def test_ahci_issue_without_start_rejected():
    env, machine, disk, controller, driver = make_ahci()
    with pytest.raises(RuntimeError):
        controller.mmio_write(controller.abar + 0x138, 1)


def test_ahci_multiple_outstanding_commands():
    env, machine, disk, controller, driver = make_ahci()
    done = []

    def issuer(lba):
        yield from driver.write(lba, 256, token=f"w{lba}")
        done.append(lba)

    def setup():
        yield from driver.start()

    run(env, setup())
    env.process(issuer(0))
    env.process(issuer(100000))
    env.process(issuer(200000))
    env.run()
    assert sorted(done) == [0, 100000, 200000]
    assert disk.contents.get(0) == "w0"
    assert disk.contents.get(100000) == "w100000"


def test_ahci_interrupt_only_when_enabled():
    env, machine, disk, controller, driver = make_ahci()

    def proc():
        # Start the port but disable interrupts; poll completion instead.
        yield from driver.start()
        yield from driver._mmio_write(0x114, 0)  # PxIE = 0
        from repro.storage.ahci import (CommandFis, CommandTable,
                                        CommandHeader)
        from repro.storage.ide import CMD_WRITE_DMA_EXT
        from repro.storage.blockdev import SectorBuffer
        buffer = SectorBuffer(0, 8)
        buffer.fill_constant("polled")
        addr = machine.hostmem.allocate(buffer)
        table = CommandTable(CommandFis(CMD_WRITE_DMA_EXT, 0, 8), [addr])
        ctba = machine.hostmem.allocate(table)
        driver._command_list[0] = CommandHeader(ctba)
        yield from driver._mmio_write(0x138, 1)
        while (yield from driver._mmio_read(0x138)) & 1:
            yield env.timeout(1e-3)

    run(env, proc())
    assert controller.commands_executed >= 1
    assert controller.interrupts_raised == 0
    assert disk.contents.get(0) == "polled"


def test_ahci_busy_flag_tracks_active_slots():
    env, machine, disk, controller, driver = make_ahci()

    def proc():
        yield from driver.start()
        assert not controller.busy
        yield from driver.write(0, 1024, token="x")
        assert not controller.busy

    run(env, proc())


def test_ahci_free_slot_helper():
    env, machine, disk, controller, driver = make_ahci()
    assert controller.free_slot() == 0
    controller._active_slots.add(0)
    controller.pxci |= 1
    assert controller.free_slot() == 1
