"""Tests for the mechanical disk model."""

import pytest

from repro import params
from repro.sim import Environment
from repro.storage.blockdev import BlockOp, BlockRequest
from repro.storage.disk import Disk


MB_SECTORS = 2**20 // params.SECTOR_BYTES


def make_disk():
    env = Environment()
    return env, Disk(env)


def run(env, generator):
    return env.run(until=env.process(generator))


def test_write_then_read_roundtrip():
    env, disk = make_disk()

    def proc():
        write = BlockRequest(BlockOp.WRITE, lba=100, sector_count=8)
        write.buffer.fill_constant("payload")
        yield from disk.execute(write)
        read = BlockRequest(BlockOp.READ, lba=100, sector_count=8)
        yield from disk.execute(read)
        return read.buffer.runs

    runs = run(env, proc())
    assert runs == [(100, 108, "payload")]


def test_read_of_empty_region_returns_gap():
    env, disk = make_disk()

    def proc():
        read = BlockRequest(BlockOp.READ, lba=0, sector_count=4)
        yield from disk.execute(read)
        return read.buffer.runs

    runs = run(env, proc())
    assert runs == [(0, 4, None)]


def test_sequential_read_faster_than_random():
    env, disk = make_disk()
    seq = BlockRequest(BlockOp.READ, lba=0, sector_count=MB_SECTORS)
    random = BlockRequest(BlockOp.READ, lba=disk.total_sectors // 2,
                          sector_count=MB_SECTORS)
    assert disk.service_time(seq) < disk.service_time(random)


def test_large_sequential_read_approaches_rated_bandwidth():
    env, disk = make_disk()
    nbytes = 200 * 2**20
    request = BlockRequest(BlockOp.READ, lba=0,
                           sector_count=nbytes // params.SECTOR_BYTES)
    duration = disk.service_time(request)
    achieved = nbytes / duration
    assert achieved == pytest.approx(params.DISK_READ_BW, rel=0.01)


def test_write_bandwidth_lower_than_read():
    env, disk = make_disk()
    read = BlockRequest(BlockOp.READ, lba=0, sector_count=MB_SECTORS * 100)
    write = BlockRequest(BlockOp.WRITE, lba=0, sector_count=MB_SECTORS * 100)
    assert disk.service_time(read) < disk.service_time(write)


def test_seek_time_grows_with_distance_and_caps():
    env, disk = make_disk()
    short = disk.seek_time(0, disk.total_sectors // 100)
    medium = disk.seek_time(0, disk.total_sectors // 3)
    far = disk.seek_time(0, disk.total_sectors - 1)
    assert 0 < short < medium <= far
    assert medium == pytest.approx(params.DISK_SEEK_AVG_SECONDS, rel=0.01)
    assert far <= params.DISK_SEEK_MAX_SECONDS


def test_zero_seek_when_head_in_place():
    env, disk = make_disk()
    assert disk.seek_time(500, 500) == 0.0


def test_cache_hit_fast_and_leaves_head():
    env, disk = make_disk()

    def proc():
        first = BlockRequest(BlockOp.READ, lba=1000, sector_count=8)
        yield from disk.execute(first)
        head_after = disk.head_lba
        start = env.now
        again = BlockRequest(BlockOp.READ, lba=1002, sector_count=2)
        yield from disk.execute(again)
        return head_after, env.now - start

    head_after, hit_time = run(env, proc())
    assert hit_time == pytest.approx(params.DISK_CACHE_HIT_SECONDS)
    assert disk.head_lba == head_after


def test_requests_serialize_on_the_arm():
    env, disk = make_disk()
    done = []

    def issuer(lba):
        request = BlockRequest(BlockOp.READ, lba=lba, sector_count=1024)
        yield from disk.execute(request)
        done.append((env.now, lba))

    env.process(issuer(0))
    env.process(issuer(disk.total_sectors // 2))
    env.run()
    assert len(done) == 2
    # The second request cannot finish at the same time as the first.
    assert done[1][0] > done[0][0]


def test_request_past_end_of_disk_rejected():
    env, disk = make_disk()

    def proc():
        request = BlockRequest(BlockOp.READ, lba=disk.total_sectors,
                               sector_count=1)
        yield from disk.execute(request)

    with pytest.raises(ValueError):
        run(env, proc())


def test_metrics_accumulate():
    env, disk = make_disk()

    def proc():
        write = BlockRequest(BlockOp.WRITE, lba=0, sector_count=64)
        write.buffer.fill_constant("x")
        yield from disk.execute(write)
        read = BlockRequest(BlockOp.READ, lba=0, sector_count=64)
        yield from disk.execute(read)

    run(env, proc())
    assert disk.requests_served == 2
    assert disk.sectors_written == 64
    assert disk.sectors_read == 64
    assert disk.busy_seconds > 0
    assert 0 < disk.utilization(env.now) <= 1.0


def test_interleaved_writes_cause_seek_overhead():
    """Two writers at distant LBAs interleaved must seek; total busy time
    exceeds what pure sequential streaming would take (paper 5.6)."""
    env, disk = make_disk()
    far = disk.total_sectors // 2

    def writer(base):
        for i in range(10):
            request = BlockRequest(BlockOp.WRITE, lba=base + i * 128,
                                   sector_count=128)
            request.buffer.fill_constant("w")
            yield from disk.execute(request)

    env.process(writer(0))
    env.process(writer(far))
    env.run()
    transfer_only = 20 * 128 * params.SECTOR_BYTES / params.DISK_WRITE_BW
    assert disk.busy_seconds > 2 * transfer_only
    assert disk.seek_seconds > 0
