"""Tests for the MegaRAID-style controller, driver, and mediator claim."""

import pytest

from repro.cloud.scenario import build_testbed
from repro.guest.driver_megaraid import MegaRaidDriver
from repro.guest.osimage import OsImage
from repro.hw.machine import Machine, MachineSpec
from repro.sim import Environment
from repro.storage import megaraid
from repro.storage.blockdev import BlockOp
from repro.storage.disk import Disk
from repro.storage.megaraid import MegaRaidController, MfiFrame, \
    decode_frame

MB = 2**20


def make():
    env = Environment()
    machine = Machine(env, MachineSpec(disk_controller="megaraid"))
    disk = Disk(env)
    controller = MegaRaidController(env, disk, machine)
    driver = MegaRaidDriver(machine)
    return env, machine, disk, controller, driver


def run(env, generator):
    return env.run(until=env.process(generator))


def test_decode_frame():
    read = decode_frame(MfiFrame("read", 100, 8, 0, 1))
    assert read.op is BlockOp.READ and read.lba == 100
    write = decode_frame(MfiFrame("write", 5, 2, 0, 2))
    assert write.op is BlockOp.WRITE
    assert decode_frame(MfiFrame("flush", 0, 0, 0, 3)) is None


def test_write_read_roundtrip():
    env, machine, disk, controller, driver = make()

    def proc():
        yield from driver.write(300, 32, token="mfi-data")
        buffer = yield from driver.read(300, 32)
        return buffer.runs

    assert run(env, proc()) == [(300, 332, "mfi-data")]
    assert controller.commands_executed == 2
    assert controller.interrupts_raised == 2


def test_flush_and_status():
    env, machine, disk, controller, driver = make()

    def proc():
        yield from driver.write(0, 1, token="x")
        yield from driver.flush()
        status = controller.mmio_read(
            controller.mmio_base + megaraid.REG_STATUS)
        return status

    status = run(env, proc())
    assert status == 0  # idle, no pending replies
    assert controller.commands_executed == 2


def test_outbound_reply_none_when_empty():
    env, machine, disk, controller, driver = make()
    reply = controller.mmio_read(
        controller.mmio_base + megaraid.REG_OUTBOUND_REPLY)
    assert reply == megaraid.REPLY_NONE


def test_duplicate_context_rejected():
    env, machine, disk, controller, driver = make()
    from repro.storage.blockdev import SectorBuffer
    buffer = SectorBuffer(0, 1)
    address = machine.hostmem.allocate(buffer)
    frame = MfiFrame("read", 0, 1, address, 7)
    frame_address = machine.hostmem.allocate(frame)
    controller.mmio_write(
        controller.mmio_base + megaraid.REG_INBOUND_QUEUE, frame_address)
    with pytest.raises(ValueError):
        controller.mmio_write(
            controller.mmio_base + megaraid.REG_INBOUND_QUEUE,
            frame_address)


def test_concurrent_submitters_serialize_via_driver_lock():
    env, machine, disk, controller, driver = make()
    done = []

    def submitter(lba):
        yield from driver.write(lba, 64, token=f"w{lba}")
        done.append(lba)

    env.process(submitter(0))
    env.process(submitter(100000))
    env.run()
    assert sorted(done) == [0, 100000]
    assert disk.contents.get(0) == "w0"
    assert disk.contents.get(100000) == "w100000"


def test_mediator_registry_claim():
    """Paper 4.3: 'when adding device mediators for new devices, the VMM
    core does not need to be modified.'  The MegaRAID mediator arrived
    purely through the registry: the core modules contain no reference
    to it."""
    import inspect

    from repro.vmm import bmcast, copier, devirt, mediator
    from repro.vmm.mediator import MEDIATOR_CLASSES
    from repro.vmm.mediator_megaraid import MegaRaidMediator

    assert MEDIATOR_CLASSES["megaraid"] is MegaRaidMediator
    for core_module in (mediator, copier, devirt):
        source = inspect.getsource(core_module)
        assert "megaraid" not in source.lower(), core_module.__name__
    # bmcast only imports the module for registration side effects.
    source = inspect.getsource(bmcast)
    assert "MegaRaidMediator" not in source


def test_unknown_controller_kind_rejected():
    from repro.vmm.mediator import mediator_for

    env = Environment()
    machine = Machine(env)
    machine.attach_disk_controller(type("Weird", (), {"kind": "weird"})())
    with pytest.raises(TypeError):
        mediator_for(env, machine, None)


def test_fio_on_megaraid_reaches_disk_speed():
    from repro import params
    from repro.apps.fio import FioBenchmark
    from repro.cloud.provisioner import Provisioner

    image = OsImage(size_bytes=32 * MB, boot_read_bytes=2 * MB,
                    boot_think_seconds=1.0)
    testbed = build_testbed(disk_controller="megaraid", image=image)
    provisioner = Provisioner(testbed)
    env = testbed.env

    def scenario():
        instance = yield from provisioner.deploy("baremetal",
                                                 skip_firmware=True)
        fio = FioBenchmark(instance, file_lba=1024)
        fio.TOTAL_BYTES = 16 * MB
        yield from fio.layout()
        return (yield from fio.read_throughput())

    throughput = env.run(until=env.process(scenario()))
    assert throughput == pytest.approx(params.DISK_READ_BW, rel=0.05)
