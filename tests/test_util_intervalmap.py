"""Unit + property tests for the IntervalMap."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.intervalmap import IntervalMap


def test_empty_map():
    m = IntervalMap()
    assert m.get(0) is None
    assert len(m) == 0
    assert m.total_covered() == 0


def test_set_and_get():
    m = IntervalMap()
    m.set_range(10, 5, "a")
    assert m.get(9) is None
    assert m.get(10) == "a"
    assert m.get(14) == "a"
    assert m.get(15) is None


def test_zero_length_rejected():
    m = IntervalMap()
    with pytest.raises(ValueError):
        m.set_range(0, 0, "a")
    with pytest.raises(ValueError):
        m.clear_range(0, 0)


def test_negative_start_rejected():
    m = IntervalMap()
    with pytest.raises(ValueError):
        m.set_range(-1, 5, "a")


def test_overwrite_splits_run():
    m = IntervalMap()
    m.set_range(0, 10, "a")
    m.set_range(3, 4, "b")
    assert m.runs() == [(0, 3, "a"), (3, 7, "b"), (7, 10, "a")]


def test_adjacent_equal_values_merge():
    m = IntervalMap()
    m.set_range(0, 5, "a")
    m.set_range(5, 5, "a")
    assert m.runs() == [(0, 10, "a")]


def test_adjacent_unequal_values_stay_separate():
    m = IntervalMap()
    m.set_range(0, 5, "a")
    m.set_range(5, 5, "b")
    assert len(m) == 2


def test_clear_range_middle():
    m = IntervalMap()
    m.set_range(0, 10, "a")
    m.clear_range(4, 2)
    assert m.runs() == [(0, 4, "a"), (6, 10, "a")]
    assert m.get(5) is None


def test_clear_range_spanning_multiple_runs():
    m = IntervalMap()
    m.set_range(0, 5, "a")
    m.set_range(5, 5, "b")
    m.set_range(10, 5, "c")
    m.clear_range(3, 9)
    assert m.runs() == [(0, 3, "a"), (12, 15, "c")]


def test_runs_in_tiles_query_with_gaps():
    m = IntervalMap()
    m.set_range(5, 5, "a")
    m.set_range(15, 5, "b")
    tiles = list(m.runs_in(0, 25))
    assert tiles == [
        (0, 5, None),
        (5, 10, "a"),
        (10, 15, None),
        (15, 20, "b"),
        (20, 25, None),
    ]


def test_runs_in_clips_to_query():
    m = IntervalMap()
    m.set_range(0, 100, "a")
    assert list(m.runs_in(40, 20)) == [(40, 60, "a")]


def test_covered_length_and_fully_covered():
    m = IntervalMap()
    m.set_range(0, 10, "a")
    m.set_range(20, 10, "b")
    assert m.covered_length(0, 30) == 20
    assert not m.is_fully_covered(0, 30)
    assert m.is_fully_covered(0, 10)
    assert m.is_fully_covered(22, 5)


def test_first_gap():
    m = IntervalMap()
    m.set_range(0, 10, "a")
    m.set_range(15, 5, "b")
    assert m.first_gap(0, 20) == (10, 15)
    assert m.first_gap(0, 10) is None
    assert m.first_gap(0, 30) == (10, 15)


def test_equality():
    a = IntervalMap()
    b = IntervalMap()
    a.set_range(0, 5, "x")
    b.set_range(0, 3, "x")
    b.set_range(3, 2, "x")
    assert a == b


# -- property tests -----------------------------------------------------------

@st.composite
def operations(draw):
    ops = []
    for _ in range(draw(st.integers(0, 30))):
        kind = draw(st.sampled_from(["set", "clear"]))
        start = draw(st.integers(0, 200))
        length = draw(st.integers(1, 50))
        value = draw(st.integers(0, 3))
        ops.append((kind, start, length, value))
    return ops


@settings(max_examples=200, deadline=None)
@given(operations())
def test_matches_naive_dict_model(ops):
    """The interval map must agree with a plain per-key dict."""
    m = IntervalMap()
    model = {}
    for kind, start, length, value in ops:
        if kind == "set":
            m.set_range(start, length, value)
            for key in range(start, start + length):
                model[key] = value
        else:
            m.clear_range(start, length)
            for key in range(start, start + length):
                model.pop(key, None)
    for key in range(0, 260):
        assert m.get(key) == model.get(key), f"mismatch at {key}"
    assert m.total_covered() == len(model)


@settings(max_examples=100, deadline=None)
@given(operations())
def test_runs_are_maximal_and_sorted(ops):
    """Runs must be sorted, non-overlapping, non-empty, and coalesced."""
    m = IntervalMap()
    for kind, start, length, value in ops:
        if kind == "set":
            m.set_range(start, length, value)
        else:
            m.clear_range(start, length)
    runs = m.runs()
    for start, end, _ in runs:
        assert start < end
    for (s1, e1, v1), (s2, e2, v2) in zip(runs, runs[1:]):
        assert e1 <= s2
        if e1 == s2:
            assert v1 != v2, "adjacent equal runs must be merged"


@settings(max_examples=100, deadline=None)
@given(operations(), st.integers(0, 250), st.integers(1, 60))
def test_runs_in_tiles_exactly(ops, start, length):
    m = IntervalMap()
    for kind, s, l, value in ops:
        if kind == "set":
            m.set_range(s, l, value)
        else:
            m.clear_range(s, l)
    tiles = list(m.runs_in(start, length))
    cursor = start
    for tile_start, tile_end, value in tiles:
        assert tile_start == cursor
        assert tile_end > tile_start
        cursor = tile_end
        for key in range(tile_start, min(tile_end, tile_start + 3)):
            assert m.get(key) == value
    assert cursor == start + length
