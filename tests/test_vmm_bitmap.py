"""Tests for the deployment block bitmap and its consistency rules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import params
from repro.vmm.bitmap import BlockBitmap, BlockState


BLOCK_SECTORS = params.COPY_BLOCK_BYTES // params.SECTOR_BYTES


def make_bitmap(blocks=8):
    return BlockBitmap(blocks * BLOCK_SECTORS)


def test_geometry():
    bitmap = make_bitmap(8)
    assert bitmap.block_count == 8
    assert bitmap.block_of(0) == 0
    assert bitmap.block_of(BLOCK_SECTORS) == 1
    assert bitmap.block_range(1) == (BLOCK_SECTORS, BLOCK_SECTORS)


def test_partial_last_block():
    bitmap = BlockBitmap(BLOCK_SECTORS + 100)
    assert bitmap.block_count == 2
    start, count = bitmap.block_range(1)
    assert start == BLOCK_SECTORS
    assert count == 100


def test_invalid_construction():
    with pytest.raises(ValueError):
        BlockBitmap(0)
    with pytest.raises(ValueError):
        BlockBitmap(100, block_bytes=777)


def test_claim_fill_lifecycle():
    bitmap = make_bitmap()
    assert bitmap.state(0) is BlockState.EMPTY
    assert bitmap.try_claim(0)
    assert bitmap.state(0) is BlockState.COPYING
    assert not bitmap.try_claim(0)  # cannot double-claim
    bitmap.commit_fill(0)
    assert bitmap.state(0) is BlockState.FILLED
    assert not bitmap.try_claim(0)  # cannot claim filled


def test_commit_without_claim_rejected():
    bitmap = make_bitmap()
    with pytest.raises(ValueError):
        bitmap.commit_fill(0)


def test_release_claim():
    bitmap = make_bitmap()
    bitmap.try_claim(2)
    bitmap.release_claim(2)
    assert bitmap.state(2) is BlockState.EMPTY
    assert bitmap.try_claim(2)


def test_complete_flag():
    bitmap = make_bitmap(3)
    for block in range(3):
        bitmap.try_claim(block)
        bitmap.commit_fill(block)
    assert bitmap.complete
    assert bitmap.filled_count == 3


def test_first_empty_from_prefers_locality_and_wraps():
    bitmap = make_bitmap(6)
    for block in (3, 4):
        bitmap.try_claim(block)
        bitmap.commit_fill(block)
    assert bitmap.first_empty_from(3) == 5
    assert bitmap.first_empty_from(5) == 5
    # After 5 is filled, search from 5 wraps to 0.
    bitmap.try_claim(5)
    bitmap.commit_fill(5)
    assert bitmap.first_empty_from(5) == 0


def test_first_empty_skips_copying():
    bitmap = make_bitmap(3)
    bitmap.try_claim(0)
    assert bitmap.first_empty_from(0) == 1


def test_first_empty_none_when_done():
    bitmap = make_bitmap(2)
    for block in range(2):
        bitmap.try_claim(block)
        bitmap.commit_fill(block)
    assert bitmap.first_empty_from(0) is None


def test_guest_full_block_write_fills():
    bitmap = make_bitmap()
    start, count = bitmap.block_range(2)
    bitmap.record_guest_write(start, count)
    assert bitmap.state(2) is BlockState.FILLED


def test_guest_partial_write_marks_dirty_not_filled():
    bitmap = make_bitmap()
    bitmap.record_guest_write(10, 20)
    assert bitmap.state(0) is BlockState.EMPTY
    assert bitmap.dirty.covered_length(10, 20) == 20


def test_guest_write_spanning_blocks():
    bitmap = make_bitmap()
    # Covers all of block 1, tails of block 0 and head of block 2.
    lba = BLOCK_SECTORS - 10
    count = BLOCK_SECTORS + 30
    bitmap.record_guest_write(lba, count)
    assert bitmap.state(0) is BlockState.EMPTY
    assert bitmap.state(1) is BlockState.FILLED
    assert bitmap.state(2) is BlockState.EMPTY
    assert bitmap.dirty.covered_length(lba, 10) == 10
    assert bitmap.dirty.covered_length(2 * BLOCK_SECTORS, 20) == 20


def test_guest_write_during_copying_protects_sectors():
    """The paper's race: guest writes while the block is being fetched.
    The copier's writable_runs (the atomic check) must exclude them."""
    bitmap = make_bitmap()
    assert bitmap.try_claim(0)
    bitmap.record_guest_write(100, 50)
    runs = bitmap.writable_runs(0)
    covered = sum(count for _, count in runs)
    assert covered == BLOCK_SECTORS - 50
    for start, count in runs:
        assert start + count <= 100 or start >= 150


def test_guest_full_block_write_during_copying_cancels_claim():
    bitmap = make_bitmap()
    bitmap.try_claim(0)
    start, count = bitmap.block_range(0)
    bitmap.record_guest_write(start, count)
    assert bitmap.state(0) is BlockState.FILLED
    # The copier's commit would now be wrong; the claim is gone.
    with pytest.raises(ValueError):
        bitmap.commit_fill(0)


def test_commit_fill_clears_dirty_overlay():
    bitmap = make_bitmap()
    bitmap.try_claim(0)
    bitmap.record_guest_write(5, 10)
    bitmap.commit_fill(0)
    assert bitmap.dirty.covered_length(0, BLOCK_SECTORS) == 0


def test_sectors_local_decision():
    bitmap = make_bitmap()
    bitmap.try_claim(0)
    bitmap.commit_fill(0)
    assert bitmap.sectors_local(0, BLOCK_SECTORS)
    assert not bitmap.sectors_local(0, BLOCK_SECTORS + 1)
    # Dirty sectors count as local.
    bitmap.record_guest_write(BLOCK_SECTORS, 10)
    assert bitmap.sectors_local(0, BLOCK_SECTORS + 10)


def test_local_subranges():
    bitmap = make_bitmap()
    bitmap.try_claim(0)
    bitmap.commit_fill(0)
    bitmap.record_guest_write(BLOCK_SECTORS + 100, 10)
    ranges = list(bitmap.local_subranges(0, 2 * BLOCK_SECTORS))
    assert (0, BLOCK_SECTORS) in ranges
    assert (BLOCK_SECTORS + 100, 10) in ranges
    assert len(ranges) == 2


def test_snapshot_restore_roundtrip():
    bitmap = make_bitmap(4)
    bitmap.try_claim(1)
    bitmap.commit_fill(1)
    bitmap.record_guest_write(7, 5)
    restored = BlockBitmap.restore(bitmap.snapshot())
    assert restored.block_count == 4
    assert restored.state(1) is BlockState.FILLED
    assert restored.dirty.covered_length(7, 5) == 5
    # COPYING state is transient and intentionally not persisted.


@settings(max_examples=150, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["fill", "write"]),
                          st.integers(0, 7),
                          st.integers(0, BLOCK_SECTORS - 1),
                          st.integers(1, BLOCK_SECTORS)),
                max_size=25))
def test_property_filled_blocks_never_writable_by_copier(ops):
    """Invariant: writable_runs never includes a sector the guest wrote
    (unless the block was subsequently filled, which clears the overlay
    only after the copier's data is known stale-proof)."""
    bitmap = make_bitmap(8)
    guest_written = set()
    for kind, block, offset, length in ops:
        base, block_len = bitmap.block_range(block)
        if kind == "fill":
            if bitmap.try_claim(block):
                bitmap.commit_fill(block)
                # Filling overwrites nothing the guest wrote afterwards;
                # model keeps only still-relevant writes.
                guest_written = {
                    s for s in guest_written
                    if not base <= s < base + block_len
                }
        else:
            lba = base + min(offset, block_len - 1)
            count = min(length, base + block_len - lba)
            bitmap.record_guest_write(lba, count)
            if not bitmap.is_filled(block):
                guest_written.update(range(lba, lba + count))
    for block in range(8):
        if bitmap.state(block) is BlockState.FILLED:
            continue
        if not bitmap.try_claim(block):
            continue
        for start, count in bitmap.writable_runs(block):
            for sector in range(start, start + count):
                assert sector not in guest_written
        bitmap.release_claim(block)


# -- run operations (transfer coalescing) -------------------------------------

def test_claim_run_extends_over_empty_blocks():
    bitmap = make_bitmap(8)
    assert bitmap.claim_run(0, 4) == 4
    for block in range(4):
        assert bitmap.state(block) is BlockState.COPYING
    assert bitmap.state(4) is BlockState.EMPTY


def test_claim_run_stops_at_non_empty_block():
    bitmap = make_bitmap(8)
    bitmap.try_claim(2)
    bitmap.commit_fill(2)
    assert bitmap.claim_run(0, 8) == 2  # blocks 0-1 only
    assert bitmap.state(2) is BlockState.FILLED
    assert bitmap.state(3) is BlockState.EMPTY


def test_claim_run_zero_when_first_block_taken():
    bitmap = make_bitmap(8)
    bitmap.try_claim(0)
    assert bitmap.claim_run(0, 4) == 0


def test_claim_run_clipped_at_image_end():
    bitmap = make_bitmap(4)
    assert bitmap.claim_run(2, 8) == 2


def test_claim_run_rejects_empty_request():
    bitmap = make_bitmap(4)
    with pytest.raises(ValueError):
        bitmap.claim_run(0, 0)


def test_commit_fill_run_fills_atomically():
    bitmap = make_bitmap(8)
    assert bitmap.claim_run(0, 3) == 3
    bitmap.commit_fill_run(0, 3)
    for block in range(3):
        assert bitmap.state(block) is BlockState.FILLED


def test_commit_fill_run_validates_before_mutating():
    bitmap = make_bitmap(8)
    bitmap.try_claim(0)  # block 1 deliberately unclaimed
    with pytest.raises(ValueError, match="block 1 was not claimed"):
        bitmap.commit_fill_run(0, 2)
    # Validation failed before any mutation: block 0 keeps its claim.
    assert bitmap.state(0) is BlockState.COPYING
    assert bitmap.state(1) is BlockState.EMPTY


def test_release_run_returns_blocks_to_empty():
    bitmap = make_bitmap(8)
    assert bitmap.claim_run(0, 3) == 3
    bitmap.release_run(0, 3)
    for block in range(3):
        assert bitmap.state(block) is BlockState.EMPTY


def test_run_operations_emit_per_block_notifications():
    """Sanitizers and simcheck consume per-block transition streams;
    a coalesced run must notify exactly like per-block operations."""
    bitmap = make_bitmap(8)
    events = []
    bitmap.transition_listeners.append(
        lambda event, block, **details: events.append((event, block)))
    bitmap.claim_run(0, 2)
    bitmap.commit_fill_run(0, 2)
    bitmap.claim_run(2, 1)
    bitmap.release_run(2, 1)
    assert events == [
        ("claim", 0), ("claim", 1),
        ("commit", 0), ("commit", 1),
        ("claim", 2), ("release", 2),
    ]


def test_commit_fill_run_clears_dirty_overlay():
    bitmap = make_bitmap(4)
    bitmap.claim_run(0, 2)
    bitmap.record_guest_write(3, 5)  # partial write inside block 0
    bitmap.commit_fill_run(0, 2)
    assert bitmap.dirty.covered_length(0, 2 * BLOCK_SECTORS) == 0
