"""Integration tests: BMcast deploying a guest end to end.

Small images keep these fast; the benchmarks use paper-scale ones.
"""

import pytest

from repro import params
from repro.cloud.scenario import build_testbed
from repro.guest.kernel import GuestOs
from repro.guest.osimage import OsImage
from repro.hw.cpu import VmxMode
from repro.storage.blockdev import BlockOp
from repro.vmm.bmcast import BmcastVmm
from repro.vmm.moderation import FULL_SPEED, ModerationPolicy

MB = 2**20
SECTORS_PER_MB = MB // params.SECTOR_BYTES


def small_image(size_mb=64, boot_mb=4):
    return OsImage(size_bytes=size_mb * MB,
                   boot_read_bytes=boot_mb * MB,
                   boot_think_seconds=2.0)


def make_deployment(controller="ahci", size_mb=64, policy=FULL_SPEED,
                    **testbed_kwargs):
    testbed = build_testbed(disk_controller=controller,
                            image=small_image(size_mb),
                            **testbed_kwargs)
    node = testbed.node
    vmm = BmcastVmm(testbed.env, node.machine, node.vmm_nic,
                    testbed.server_port,
                    image_sectors=testbed.image.total_sectors,
                    policy=policy)
    guest = GuestOs(node.machine, testbed.image)
    return testbed, vmm, guest


def deploy_and_boot(testbed, vmm, guest):
    env = testbed.env

    def scenario():
        yield from testbed.node.machine.power_on()
        yield from testbed.node.machine.firmware.network_boot()
        yield from vmm.boot()
        boot_seconds = yield from guest.boot()
        return boot_seconds

    return env.run(until=env.process(scenario()))


@pytest.mark.parametrize("controller", ["ide", "ahci", "megaraid"])
def test_guest_boots_on_empty_disk_via_copy_on_read(controller):
    testbed, vmm, guest = make_deployment(controller)
    boot_seconds = deploy_and_boot(testbed, vmm, guest)
    assert guest.booted
    assert boot_seconds > 0
    # Every boot read of the empty disk had to be redirected (or landed
    # on freshly copied blocks).
    assert vmm.mediator.redirected_reads > 0
    assert vmm.deployment.redirected_bytes > 0
    assert vmm.phase in ("deployment", "baremetal")


@pytest.mark.parametrize("controller", ["ide", "ahci", "megaraid"])
def test_boot_reads_return_image_data(controller):
    testbed, vmm, guest = make_deployment(controller)
    env = testbed.env
    results = {}

    def scenario():
        yield from testbed.node.machine.power_on()
        yield from testbed.node.machine.firmware.network_boot()
        yield from vmm.boot()
        buffer = yield from guest.read(100, 64)
        results["runs"] = buffer.runs

    env.run(until=env.process(scenario()))
    # The disk was empty; the data must match the image's tokens.
    assert results["runs"] == [(100, 164, (testbed.image.name, 0))]


@pytest.mark.parametrize("controller", ["ide", "ahci", "megaraid"])
def test_full_deployment_fills_disk_and_devirtualizes(controller):
    testbed, vmm, guest = make_deployment(controller, size_mb=32)
    env = testbed.env

    def scenario():
        yield from testbed.node.machine.power_on()
        yield from testbed.node.machine.firmware.network_boot()
        yield from vmm.boot()
        yield from guest.boot()
        yield vmm.copier.done

    env.run(until=env.process(scenario()))
    env.run(until=env.now + 5.0)  # let de-virtualization finish
    assert vmm.phase == "baremetal"
    assert vmm.bitmap.complete
    # The local disk now holds the image.
    assert testbed.image.verify_deployed(testbed.node.disk.contents,
                                         guest.written)
    # De-virtualization is total: no intercepts, VMX off, no nested
    # paging, bare-metal condition.
    machine = testbed.node.machine
    assert not machine.bus.has_intercepts
    for cpu in machine.cpus:
        assert cpu.mode is VmxMode.OFF
        assert not cpu.npt.enabled
    assert machine.condition.label == "bmcast-devirt"
    assert machine.condition.nested_paging is False


def test_guest_writes_during_deployment_preserved():
    """The paper's consistency race: guest writes must survive the
    background copy."""
    testbed, vmm, guest = make_deployment("ahci", size_mb=32)
    env = testbed.env
    write_lba = 5 * SECTORS_PER_MB + 17  # mid-block, partial

    def scenario():
        yield from testbed.node.machine.power_on()
        yield from testbed.node.machine.firmware.network_boot()
        yield from vmm.boot()
        # Write while the copier races over the same region.
        for i in range(20):
            yield from guest.write(write_lba + i * 64, 32, tag=f"w{i}")
        yield vmm.copier.done

    env.run(until=env.process(scenario()))
    env.run(until=env.now + 5.0)
    disk = testbed.node.disk.contents
    for i in range(20):
        token = disk.get(write_lba + i * 64)
        assert token is not None
        assert token[0] == guest.name  # guest data, not image data
    assert testbed.image.verify_deployed(disk, guest.written)


def test_full_block_guest_write_skips_copy():
    testbed, vmm, guest = make_deployment(
        "ahci", size_mb=32,
        policy=ModerationPolicy(write_interval=50e-3))
    env = testbed.env
    block_sectors = vmm.bitmap.block_sectors
    target_block = 20
    lba = target_block * block_sectors

    def scenario():
        yield from testbed.node.machine.power_on()
        yield from testbed.node.machine.firmware.network_boot()
        yield from vmm.boot()
        yield from guest.write(lba, block_sectors, tag="full-block")
        yield vmm.copier.done

    env.run(until=env.process(scenario()))
    env.run(until=env.now + 5.0)
    disk = testbed.node.disk.contents
    token = disk.get(lba + 100)
    assert token[0] == guest.name
    assert vmm.bitmap.complete


@pytest.mark.parametrize("controller", ["ide", "ahci", "megaraid"])
def test_multiplexing_queues_and_replays_guest_commands(controller):
    testbed, vmm, guest = make_deployment(controller, size_mb=64)
    env = testbed.env
    reads = []

    def guest_io():
        # Hammer the disk while the copier multiplexes its writes.
        for i in range(60):
            buffer = yield from guest.read(i * 128, 64)
            reads.append(buffer.runs)
            yield env.timeout(2e-3)

    def scenario():
        yield from testbed.node.machine.power_on()
        yield from testbed.node.machine.firmware.network_boot()
        yield from vmm.boot()
        yield from guest_io()
        yield vmm.copier.done

    env.run(until=env.process(scenario()))
    env.run(until=env.now + 5.0)
    assert vmm.mediator.multiplexed_requests > 0
    # Every read must have produced correct image data regardless of
    # queueing/replay.
    for runs in reads:
        for start, end, token in runs:
            assert token == (testbed.image.name, 0)
    assert testbed.image.verify_deployed(testbed.node.disk.contents,
                                         guest.written)


def test_interrupts_from_vmm_requests_hidden_from_guest():
    testbed, vmm, guest = make_deployment("ahci", size_mb=16)
    env = testbed.env
    machine = testbed.node.machine

    def scenario():
        yield from machine.power_on()
        yield from machine.firmware.network_boot()
        yield from vmm.boot()
        yield vmm.copier.done

    env.run(until=env.process(scenario()))
    env.run(until=env.now + 5.0)
    # The copier multiplexed many requests, yet none of their
    # completions ever reached the guest: the AHCI mediator silences the
    # port (PxIE) so the HBA does not even assert the line, and nothing
    # is left pending to fire later.
    line = vmm.mediator.irq_line
    assert vmm.mediator.multiplexed_requests > 0
    assert machine.interrupts.delivered[line] == 0
    assert not machine.interrupts.is_pending(line)


def test_deployment_summary_reports():
    testbed, vmm, guest = make_deployment("ahci", size_mb=16)
    env = testbed.env

    def scenario():
        yield from testbed.node.machine.power_on()
        yield from testbed.node.machine.firmware.network_boot()
        yield from vmm.boot()
        yield from guest.boot()
        yield vmm.copier.done

    env.run(until=env.process(scenario()))
    env.run(until=env.now + 5.0)
    summary = vmm.summary()
    assert summary["phase"] == "baremetal"
    assert summary["blocks_filled"] > 0
    assert summary["interpreted_commands"] > 0
    assert summary["total_vm_exits"] > 0
    assert summary["deployment_seconds"] > 0


def test_protected_bitmap_region_invisible_to_guest():
    testbed, vmm, guest = make_deployment("ahci", size_mb=16)
    env = testbed.env
    protected = vmm.deployment.protected_lba
    results = {}

    def scenario():
        yield from testbed.node.machine.power_on()
        yield from testbed.node.machine.firmware.network_boot()
        yield from vmm.boot()
        # Guest tries to read and write the VMM's bitmap region.
        yield from guest.write(protected, 8, tag="attack")
        buffer = yield from guest.read(protected, 8)
        results["runs"] = buffer.runs

    env.run(until=env.process(scenario()))
    # The write was dropped, the read returned dummy data.
    assert testbed.node.disk.contents.get(protected) is None
    assert results["runs"] == [(protected, protected + 8, None)]


def test_phase_log_is_ordered():
    testbed, vmm, guest = make_deployment("ahci", size_mb=16)
    env = testbed.env

    def scenario():
        yield from testbed.node.machine.power_on()
        yield from testbed.node.machine.firmware.network_boot()
        yield from vmm.boot()
        yield vmm.copier.done

    env.run(until=env.process(scenario()))
    env.run(until=env.now + 5.0)
    phases = [phase for _, phase in vmm.phase_log]
    assert phases == ["off", "initialization", "deployment",
                      "devirtualization", "baremetal"]
    stamps = [stamp for stamp, _ in vmm.phase_log]
    assert stamps == sorted(stamps)


def test_guest_io_pass_through_after_devirt_is_free_of_exits():
    testbed, vmm, guest = make_deployment("ahci", size_mb=16)
    env = testbed.env
    machine = testbed.node.machine
    counters = {}

    def scenario():
        yield from machine.power_on()
        yield from machine.firmware.network_boot()
        yield from vmm.boot()
        yield vmm.copier.done
        yield env.timeout(5.0)
        counters["exits_before"] = machine.total_vm_exits()
        for i in range(20):
            yield from guest.read(i * 64, 64)
        counters["exits_after"] = machine.total_vm_exits()

    env.run(until=env.process(scenario()))
    assert vmm.phase == "baremetal"
    assert counters["exits_after"] == counters["exits_before"]
