"""Lifecycle extensions: shutdown/resume, memory hot-plug, resident mode.

These cover the paper's Section 3.3 shutdown-and-reboot case (bitmap
persisted to a guest-invisible disk region) and the Section 4.3
limitations the paper marks as fixable (memory release, keeping a
resident VMM to hide the management NIC).
"""

import pytest

from repro import params
from repro.cloud.scenario import build_testbed
from repro.guest.kernel import GuestOs
from repro.guest.osimage import OsImage
from repro.hw.cpu import VmxMode
from repro.hw.pci import PciDevice
from repro.vmm.bmcast import BmcastVmm
from repro.vmm.moderation import FULL_SPEED, ModerationPolicy

MB = 2**20


def small_image(size_mb=64):
    return OsImage(size_bytes=size_mb * MB, boot_read_bytes=4 * MB,
                   boot_think_seconds=2.0)


def make(policy=FULL_SPEED, **vmm_kwargs):
    testbed = build_testbed(image=small_image())
    node = testbed.node
    vmm = BmcastVmm(testbed.env, node.machine, node.vmm_nic,
                    testbed.server_port,
                    image_sectors=testbed.image.total_sectors,
                    policy=policy, **vmm_kwargs)
    return testbed, vmm


def start(testbed, vmm):
    env = testbed.env

    def scenario():
        yield from testbed.node.machine.power_on()
        yield from testbed.node.machine.firmware.network_boot()
        yield from vmm.boot()

    env.run(until=env.process(scenario()))


# -- shutdown / resume -------------------------------------------------------

def test_shutdown_persists_bitmap_and_powers_off():
    testbed, vmm = make(policy=ModerationPolicy(write_interval=5e-3))
    env = testbed.env
    start(testbed, vmm)
    env.run(until=env.now + 0.5)  # copy a few blocks
    filled_before = vmm.bitmap.filled_count
    assert 0 < filled_before < vmm.bitmap.block_count

    env.run(until=env.process(vmm.shutdown()))
    assert vmm.phase == "off"
    for cpu in testbed.node.machine.cpus:
        assert cpu.mode is VmxMode.OFF
    assert not testbed.node.machine.bus.has_intercepts
    # The bitmap save is on disk, in the protected region.
    token = testbed.node.disk.contents.get(vmm.deployment.protected_lba)
    assert token[0] == BmcastVmm.BITMAP_TOKEN


def test_resume_skips_already_filled_blocks():
    testbed, vmm = make(policy=ModerationPolicy(write_interval=5e-3))
    env = testbed.env
    start(testbed, vmm)
    env.run(until=env.now + 0.5)
    env.run(until=env.process(vmm.shutdown()))
    filled_before = vmm.bitmap.filled_count
    server_reads_before = testbed.store.reads

    # Reboot: a fresh VMM instance resumes from the saved bitmap.
    node = testbed.node
    vmm2 = BmcastVmm(env, node.machine, node.vmm_nic,
                     testbed.server_port,
                     image_sectors=testbed.image.total_sectors,
                     policy=FULL_SPEED, resume=True)

    def reboot():
        yield from node.machine.firmware.reboot()
        yield from node.machine.firmware.network_boot()
        yield from vmm2.boot()
        yield vmm2.copier.done

    env.run(until=env.process(reboot()))
    env.run(until=env.now + 5.0)
    assert vmm2.resumed_from_disk
    assert vmm2.bitmap.complete
    # The resumed deployment fetched only the remaining blocks.
    refetched = vmm2.copier.blocks_filled
    assert refetched == vmm2.bitmap.block_count - filled_before
    assert testbed.image.verify_deployed(testbed.node.disk.contents)
    assert testbed.store.reads > server_reads_before


def test_resume_without_saved_bitmap_starts_fresh():
    testbed, vmm = make(resume=True)
    start(testbed, vmm)
    assert not vmm.resumed_from_disk
    assert vmm.bitmap.filled_count >= 0


def test_shutdown_from_wrong_phase_rejected():
    testbed, vmm = make()
    env = testbed.env
    start(testbed, vmm)
    env.run(until=vmm.copier.done)
    env.run(until=env.now + 5.0)
    assert vmm.phase == "baremetal"

    def proc():
        yield from vmm.shutdown()

    with pytest.raises(RuntimeError):
        env.run(until=env.process(proc()))


def test_guest_cannot_corrupt_saved_bitmap():
    """The protected-region conversion (paper 3.3): guest writes to the
    bitmap region are dropped, so the save survives a hostile guest."""
    testbed, vmm = make(policy=ModerationPolicy(write_interval=5e-3))
    env = testbed.env
    start(testbed, vmm)
    env.run(until=env.now + 0.5)

    def persist_then_attack():
        yield from vmm.persist_bitmap()
        guest = GuestOs(testbed.node.machine, testbed.image)
        yield from guest.write(vmm.deployment.protected_lba, 8,
                               tag="corrupt")

    env.run(until=env.process(persist_then_attack()))
    token = testbed.node.disk.contents.get(vmm.deployment.protected_lba)
    assert token[0] == BmcastVmm.BITMAP_TOKEN  # still the VMM's save


# -- memory hot-plug ------------------------------------------------------------

def test_memory_not_released_by_default():
    """The prototype's documented limitation (paper 4.3)."""
    testbed, vmm = make()
    env = testbed.env
    start(testbed, vmm)
    env.run(until=vmm.copier.done)
    env.run(until=env.now + 5.0)
    assert testbed.node.machine.memory.reserved_bytes \
        == params.VMM_RESERVED_BYTES


def test_memory_hotplug_release_extension():
    testbed, vmm = make(release_memory=True)
    env = testbed.env
    start(testbed, vmm)
    env.run(until=vmm.copier.done)
    env.run(until=env.now + 5.0)
    assert vmm.phase == "baremetal"
    assert testbed.node.machine.memory.reserved_bytes == 0
    assert testbed.node.machine.memory.usable_bytes \
        == testbed.node.machine.memory.size_bytes


# -- resident mode (management NIC hiding) ----------------------------------------

def test_resident_mode_keeps_vmx_and_hides_nic():
    testbed, vmm = make(vmxoff_mode="resident", management_nic_slot=4)
    machine = testbed.node.machine
    machine.pci.attach(4, PciDevice(vendor_id=0x8086, device_id=0x10D3,
                                    class_code=0x020000,
                                    name="management-nic"))
    env = testbed.env
    start(testbed, vmm)
    env.run(until=vmm.copier.done)
    env.run(until=env.now + 5.0)
    assert vmm.phase == "baremetal"
    # The VMM stays resident: VMX still on, but no intercepts or nested
    # paging remain, so overhead is negligible (only CPUID exits).
    assert vmm.devirtualizer.residual_vmx
    assert not machine.bus.has_intercepts
    assert all(not cpu.npt.enabled for cpu in machine.cpus)
    # The management NIC is invisible to the guest's PCI scan.
    assert machine.pci.device_at(4) is None
    assert machine.pci.read_vendor_id(4) == 0xFFFF


def test_full_vmxoff_leaves_nic_visible():
    testbed, vmm = make(vmxoff_mode="full")
    machine = testbed.node.machine
    machine.pci.attach(4, PciDevice(vendor_id=0x8086, device_id=0x10D3,
                                    class_code=0x020000,
                                    name="management-nic"))
    env = testbed.env
    start(testbed, vmm)
    env.run(until=vmm.copier.done)
    env.run(until=env.now + 5.0)
    assert not vmm.devirtualizer.residual_vmx
    # Paper 4.3: after full VMXOFF the dedicated NIC can be found by
    # the guest if it looks.
    assert machine.pci.device_at(4) is not None
